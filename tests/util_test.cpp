// Tests for RNG determinism, statistics helpers, environment knobs and the
// fork-join thread pool.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace ficon {
namespace {

TEST(SplitMix64, DeterministicAndWellMixed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  SplitMix64 c(42);
  SplitMix64 d(43);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (c.next() != d.next()) ++differing;
  }
  EXPECT_EQ(differing, 64);  // adjacent seeds diverge immediately
}

TEST(Rng, SeedDeterminism) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.uniform_int(0, 100), b.uniform_int(0, 100));
  }
}

TEST(Rng, UniformRangesRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const int v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const std::size_t idx = rng.index(5);
    EXPECT_LT(idx, 5u);
  }
}

TEST(Rng, UniformIntCoversEndpoints) {
  Rng rng(2);
  bool lo = false, hi = false;
  for (int i = 0; i < 500 && !(lo && hi); ++i) {
    const int v = rng.uniform_int(0, 3);
    lo = lo || v == 0;
    hi = hi || v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, RejectsEmptyRanges) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(RunningStats, MeanMinMaxVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(TopFractionMean, PaperCostSemantics) {
  // 10 values, top 10% = the single largest.
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
  EXPECT_DOUBLE_EQ(top_fraction_mean(v, 0.10), 100.0);
  // Top 30% = mean of the three largest.
  EXPECT_DOUBLE_EQ(top_fraction_mean(v, 0.30), (100.0 + 9.0 + 8.0) / 3.0);
  // Whole set.
  EXPECT_DOUBLE_EQ(top_fraction_mean(v, 1.0), 14.5);
}

TEST(TopFractionMean, AlwaysTakesAtLeastOne) {
  std::vector<double> v{3.0, 1.0};
  EXPECT_DOUBLE_EQ(top_fraction_mean(v, 0.01), 3.0);
  EXPECT_DOUBLE_EQ(top_fraction_mean({}, 0.1), 0.0);
  EXPECT_THROW(top_fraction_mean(v, 0.0), std::invalid_argument);
  EXPECT_THROW(top_fraction_mean(v, 1.5), std::invalid_argument);
}

TEST(Pearson, KnownCorrelations) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
  const std::vector<double> c{3, 3, 3, 3, 3};
  EXPECT_EQ(pearson(x, c), 0.0);
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("FICON_TEST_INT", "17", 1);
  ::setenv("FICON_TEST_BAD", "not-a-number", 1);
  ::setenv("FICON_TEST_DBL", "2.5", 1);
  ::setenv("FICON_TEST_LIST", "a,b,c", 1);
  EXPECT_EQ(env_int("FICON_TEST_INT", 3), 17);
  EXPECT_EQ(env_int("FICON_TEST_BAD", 3), 3);
  EXPECT_EQ(env_int("FICON_TEST_MISSING", 5), 5);
  EXPECT_DOUBLE_EQ(env_double("FICON_TEST_DBL", 0.1), 2.5);
  EXPECT_EQ(env_string("FICON_TEST_MISSING", "dflt"), "dflt");
  const auto list = env_list("FICON_TEST_LIST", {"x"});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "a");
  EXPECT_EQ(list[2], "c");
  EXPECT_EQ(env_list("FICON_TEST_MISSING", {"x"}),
            std::vector<std::string>{"x"});
  ::unsetenv("FICON_TEST_INT");
  ::unsetenv("FICON_TEST_BAD");
  ::unsetenv("FICON_TEST_DBL");
  ::unsetenv("FICON_TEST_LIST");
}

TEST(ThreadPool, RunsEveryBlockExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), std::max(1, threads));
    constexpr int kBlocks = 64;
    std::vector<std::atomic<int>> hits(kBlocks);
    pool.run(kBlocks, [&](int b) { hits[static_cast<std::size_t>(b)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.run(17, [&](int b) { sum += b; });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPool, NestedRunExecutesInlineInBlockOrder) {
  ThreadPool pool(4);
  std::atomic<bool> ordered{true};
  pool.run(4, [&](int) {
    // A nested run() from inside a pool task must execute inline and in
    // block order (no deadlock, no interleaving within this task).
    std::vector<int> seen;
    pool.run(8, [&](int inner) { seen.push_back(inner); });
    std::vector<int> want(8);
    std::iota(want.begin(), want.end(), 0);
    if (seen != want) ordered = false;
  });
  EXPECT_TRUE(ordered.load());
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run(16,
               [&](int b) {
                 if (b % 3 == 0) throw std::runtime_error("block failed");
                 completed++;
               }),
      std::runtime_error);
  // Non-throwing blocks all still ran (failure does not cancel the job).
  EXPECT_EQ(completed.load(), 10);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.run(5, [&](int b) { order.push_back(b); });  // no synchronization
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, DeterministicBlocking) {
  // Block layout depends on the item count only — the invariant behind
  // thread-count-independent reductions.
  EXPECT_EQ(deterministic_block_count(0), 0);
  EXPECT_EQ(deterministic_block_count(1), 1);
  EXPECT_EQ(deterministic_block_count(7), 7);
  EXPECT_EQ(deterministic_block_count(1000), 16);
  for (const std::size_t items : {1ul, 5ul, 16ul, 1000ul}) {
    const int blocks = deterministic_block_count(items);
    std::size_t covered = 0;
    for (int b = 0; b < blocks; ++b) {
      const BlockRange r = block_range(items, blocks, b);
      EXPECT_EQ(r.begin, covered);  // contiguous, ordered partition
      EXPECT_LE(r.end, items);
      covered = r.end;
    }
    EXPECT_EQ(covered, items);
  }
}

TEST(ThreadPool, GlobalPoolResizable) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().threads(), 3);
  std::atomic<int> sum{0};
  ThreadPool::global().run(10, [&](int b) { sum += b; });
  EXPECT_EQ(sum.load(), 45);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().threads(), 1);
}

TEST(MonotonicArena, SpansAreDisjointAndAligned) {
  MonotonicArena arena(256);
  const std::span<char> a = arena.alloc_span<char>(3);
  const std::span<double> b = arena.alloc_span<double>(4);
  const std::span<int> c = arena.alloc_span<int>(5);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 4u);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % alignof(int), 0u);
  // Write every element: overlap would corrupt a neighbor's pattern.
  std::fill(a.begin(), a.end(), 'x');
  std::fill(b.begin(), b.end(), 2.5);
  std::fill(c.begin(), c.end(), 7);
  EXPECT_TRUE(std::all_of(a.begin(), a.end(), [](char v) { return v == 'x'; }));
  EXPECT_TRUE(std::all_of(b.begin(), b.end(), [](double v) { return v == 2.5; }));
  EXPECT_TRUE(std::all_of(c.begin(), c.end(), [](int v) { return v == 7; }));
}

TEST(MonotonicArena, ResetRetainsBlocksAndReusesStorage) {
  MonotonicArena arena(1024);
  const double* first = arena.alloc_span<double>(16).data();
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  // Same request after reset lands on the same storage, no new blocks.
  EXPECT_EQ(arena.alloc_span<double>(16).data(), first);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(MonotonicArena, OversizedRequestGetsADedicatedBlock) {
  MonotonicArena arena(64);
  const std::span<double> big = arena.alloc_span<double>(100);  // 800 bytes
  ASSERT_EQ(big.size(), 100u);
  EXPECT_GE(arena.bytes_reserved(), 800u);
  // Steady state: repeating the same sequence after reset() allocates
  // nothing new.
  arena.reset();
  const std::size_t reserved = arena.bytes_reserved();
  (void)arena.alloc_span<double>(100);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_TRUE(arena.alloc_span<int>(0).empty());
}

}  // namespace
}  // namespace ficon
