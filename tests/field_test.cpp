// FlowField edge cases, in particular the degenerate zero-area cell
// guard: a collapsed IR partition must yield density 0 (not inf/NaN)
// and must not poison the top-fraction cost, the CSV export or any
// downstream bench report.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "congestion/field.hpp"
#include "geom/rect.hpp"

namespace ficon {
namespace {

/// 2x1 field whose cell (1, 0) has been collapsed to zero area — the
/// shape a degenerate IR partition produces.
class DegenerateField : public FlowField {
 public:
  DegenerateField() : FlowField(2, 1) {}

  Rect cell_rect(int cx, int /*cy*/) const override {
    if (cx == 0) return Rect{0.0, 0.0, 10.0, 10.0};
    return Rect{10.0, 0.0, 10.0, 10.0};  // zero width -> zero area
  }
};

TEST(FlowFieldDegenerate, ZeroAreaCellHasZeroDensity) {
  DegenerateField field;
  field.add_value(0, 0, 5.0);
  field.add_value(1, 0, 3.0);  // flow into a cell with no area

  EXPECT_DOUBLE_EQ(field.density(0, 0), 0.05);
  EXPECT_EQ(field.density(1, 0), 0.0);
  EXPECT_TRUE(std::isfinite(field.density(1, 0)));
}

TEST(FlowFieldDegenerate, TopFractionCostStaysFinite) {
  DegenerateField field;
  field.add_value(0, 0, 5.0);
  field.add_value(1, 0, 3.0);

  const double cost = field.top_area_fraction_density(0.1);
  EXPECT_TRUE(std::isfinite(cost));
  // The degenerate cell contributes nothing; the answer is the healthy
  // cell's density.
  EXPECT_DOUBLE_EQ(cost, 0.05);
  EXPECT_DOUBLE_EQ(field.top_area_fraction_density(1.0), 0.05);
}

TEST(FlowFieldDegenerate, CsvExportCarriesNoNonFiniteValues) {
  DegenerateField field;
  field.add_value(1, 0, 3.0);

  std::ostringstream csv;
  field.write_density_csv(csv);
  const std::string text = csv.str();
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
}

/// All-degenerate field: every query must degrade to 0, not NaN.
class AllZeroAreaField : public FlowField {
 public:
  AllZeroAreaField() : FlowField(1, 1) {}
  Rect cell_rect(int, int) const override { return Rect{2.0, 3.0, 2.0, 3.0}; }
};

TEST(FlowFieldDegenerate, AllDegenerateFieldCostsZero) {
  AllZeroAreaField field;
  field.add_value(0, 0, 7.0);
  EXPECT_EQ(field.density(0, 0), 0.0);
  EXPECT_EQ(field.top_area_fraction_density(0.1), 0.0);
}

}  // namespace
}  // namespace ficon
