// MST net decomposition and wirelength tests.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "route/two_pin.hpp"
#include "util/rng.hpp"

namespace ficon {
namespace {

/// Brute-force minimum spanning tree weight over all spanning trees via
/// Prim with exhaustive validation on small inputs: here we just recompute
/// with Kruskal for an independent answer.
double kruskal_weight(const std::vector<Point>& pins) {
  struct Edge {
    double w;
    std::size_t a, b;
  };
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < pins.size(); ++i) {
    for (std::size_t j = i + 1; j < pins.size(); ++j) {
      edges.push_back(Edge{manhattan(pins[i], pins[j]), i, j});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.w < b.w; });
  std::vector<std::size_t> parent(pins.size());
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  double total = 0.0;
  for (const Edge& e : edges) {
    const auto ra = find(e.a), rb = find(e.b);
    if (ra != rb) {
      parent[ra] = rb;
      total += e.w;
    }
  }
  return total;
}

TEST(MstEdges, TwoPinsSingleEdge) {
  const std::vector<Point> pins{{0, 0}, {3, 4}};
  const auto edges = mst_edges(pins, 7);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].source_net, 7);
  EXPECT_DOUBLE_EQ(edges[0].manhattan_length(), 7.0);
  EXPECT_EQ(edges[0].routing_range(), (Rect{0, 0, 3, 4}));
}

TEST(MstEdges, TreeProperty) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = rng.uniform_int(2, 8);
    std::vector<Point> pins;
    for (int i = 0; i < k; ++i) {
      pins.push_back(Point{rng.uniform(0, 100), rng.uniform(0, 100)});
    }
    const auto edges = mst_edges(pins, 0);
    EXPECT_EQ(edges.size(), pins.size() - 1);  // spanning tree edge count
  }
}

TEST(MstEdges, WeightMatchesKruskal) {
  Rng rng(12);
  for (int trial = 0; trial < 100; ++trial) {
    const int k = rng.uniform_int(2, 7);
    std::vector<Point> pins;
    for (int i = 0; i < k; ++i) {
      pins.push_back(Point{rng.uniform(0, 50), rng.uniform(0, 50)});
    }
    const auto edges = mst_edges(pins, 0);
    double prim_weight = 0.0;
    for (const auto& e : edges) prim_weight += e.manhattan_length();
    EXPECT_NEAR(prim_weight, kruskal_weight(pins), 1e-9);
  }
}

TEST(MstEdges, CoincidentPinsYieldZeroEdges) {
  const std::vector<Point> pins{{5, 5}, {5, 5}, {5, 5}};
  const auto edges = mst_edges(pins, 0);
  ASSERT_EQ(edges.size(), 2u);
  for (const auto& e : edges) {
    EXPECT_DOUBLE_EQ(e.manhattan_length(), 0.0);
    EXPECT_TRUE(e.routing_range().is_point());
  }
}

TEST(MstEdges, RequiresTwoPins) {
  EXPECT_THROW(mst_edges({Point{0, 0}}, 0), std::invalid_argument);
}

TEST(StarEdges, HubIsMedianAndEdgesCoverPins) {
  const std::vector<Point> pins{{0, 0}, {10, 2}, {4, 20}};
  const auto edges = star_edges(pins, 3);
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& e : edges) {
    EXPECT_EQ(e.source_net, 3);
    EXPECT_EQ(e.a, (Point{4.0, 2.0}));  // componentwise median hub
  }
}

TEST(StarEdges, MedianHubIsOptimalAndBoundedBelowByHpwl) {
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const int k = rng.uniform_int(2, 8);
    std::vector<Point> pins;
    double xlo = 1e300, xhi = -1e300, ylo = 1e300, yhi = -1e300;
    for (int i = 0; i < k; ++i) {
      pins.push_back(Point{rng.uniform(0, 50), rng.uniform(0, 50)});
      xlo = std::min(xlo, pins.back().x);
      xhi = std::max(xhi, pins.back().x);
      ylo = std::min(ylo, pins.back().y);
      yhi = std::max(yhi, pins.back().y);
    }
    const auto edges = star_edges(pins, 0);
    double star = 0.0;
    for (const auto& e : edges) star += e.manhattan_length();
    // HPWL lower bound (the two x-extreme pins alone cost the width, etc).
    EXPECT_GE(star + 1e-9, (xhi - xlo) + (yhi - ylo));
    // The median hub is optimal: random alternative hubs never do better.
    for (int probe = 0; probe < 10; ++probe) {
      const Point alt{rng.uniform(0, 50), rng.uniform(0, 50)};
      double alt_total = 0.0;
      for (const Point& p : pins) alt_total += manhattan(alt, p);
      EXPECT_GE(alt_total + 1e-9, star);
    }
  }
}

TEST(Decompose, StarMethodProducesOneEdgePerPin) {
  const Netlist netlist = make_mcnc("hp");
  Placement placement;
  placement.chip = Rect{0, 0, 4000, 4000};
  Rng rng(14);
  for (std::size_t i = 0; i < netlist.module_count(); ++i) {
    const Module& m = netlist.modules()[i];
    placement.module_rects.push_back(Rect::from_size(
        Point{rng.uniform(0, 1000), rng.uniform(0, 1000)}, m.width, m.height));
    placement.rotated.push_back(false);
  }
  const auto star =
      decompose_to_two_pin(netlist, placement, Decomposition::kStar);
  EXPECT_EQ(star.size(), netlist.pin_count());
  const auto mst =
      decompose_to_two_pin(netlist, placement, Decomposition::kMst);
  EXPECT_EQ(mst.size(), netlist.pin_count() - netlist.net_count());
}

TEST(Decompose, EdgeCountIsPinsMinusNets) {
  const Netlist netlist = make_mcnc("ami33");
  Placement placement;
  placement.chip = Rect{0, 0, 2000, 2000};
  Rng rng(5);
  for (std::size_t i = 0; i < netlist.module_count(); ++i) {
    const Module& m = netlist.modules()[i];
    const double x = rng.uniform(0, 2000 - m.width);
    const double y = rng.uniform(0, 2000 - m.height);
    placement.module_rects.push_back(Rect::from_size(Point{x, y}, m.width, m.height));
    placement.rotated.push_back(false);
  }
  const auto nets = decompose_to_two_pin(netlist, placement);
  EXPECT_EQ(nets.size(), netlist.pin_count() - netlist.net_count());
  for (const auto& n : nets) {
    EXPECT_GE(n.source_net, 0);
    EXPECT_LT(n.source_net, static_cast<int>(netlist.net_count()));
  }
}

TEST(Decompose, WirelengthIsSumOfEdges) {
  const Netlist netlist = make_mcnc("hp");
  Placement placement;
  placement.chip = Rect{0, 0, 5000, 5000};
  Rng rng(6);
  for (std::size_t i = 0; i < netlist.module_count(); ++i) {
    const Module& m = netlist.modules()[i];
    placement.module_rects.push_back(Rect::from_size(
        Point{rng.uniform(0, 1000), rng.uniform(0, 1000)}, m.width, m.height));
    placement.rotated.push_back(i % 2 == 1);
  }
  const auto nets = decompose_to_two_pin(netlist, placement);
  double sum = 0.0;
  for (const auto& n : nets) sum += n.manhattan_length();
  EXPECT_NEAR(mst_wirelength(netlist, placement), sum, 1e-9);
}

TEST(Decompose, HpwlLowerBoundsMst) {
  // For every net, HPWL <= MST length; so totals obey the same order.
  const Netlist netlist = make_mcnc("xerox");
  Placement placement;
  placement.chip = Rect{0, 0, 8000, 8000};
  Rng rng(7);
  for (std::size_t i = 0; i < netlist.module_count(); ++i) {
    const Module& m = netlist.modules()[i];
    placement.module_rects.push_back(Rect::from_size(
        Point{rng.uniform(0, 4000), rng.uniform(0, 4000)}, m.width, m.height));
    placement.rotated.push_back(false);
  }
  EXPECT_LE(hpwl(netlist, placement), mst_wirelength(netlist, placement) + 1e-9);
}

TEST(Decompose, ReusableDecomposerMatchesOneShotApi) {
  // TwoPinDecomposer (the annealing loop's buffer-reusing path) must emit
  // exactly the edges of decompose_to_two_pin, in the same order, across
  // repeated calls on different placements — the incremental pipeline's
  // bit-identical guarantee depends on it.
  const Netlist netlist = make_mcnc("ami33");
  TwoPinDecomposer decomposer;
  Rng rng(15);
  for (int trial = 0; trial < 5; ++trial) {
    Placement placement;
    placement.chip = Rect{0, 0, 3000, 3000};
    for (std::size_t i = 0; i < netlist.module_count(); ++i) {
      const Module& m = netlist.modules()[i];
      placement.module_rects.push_back(Rect::from_size(
          Point{rng.uniform(0, 2000), rng.uniform(0, 2000)}, m.width,
          m.height));
      placement.rotated.push_back(trial % 2 == 0);
    }
    for (const Decomposition method :
         {Decomposition::kMst, Decomposition::kStar}) {
      const auto expected = decompose_to_two_pin(netlist, placement, method);
      const std::span<const TwoPinNet> got =
          decomposer.decompose(netlist, placement, method);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(got[i].a, expected[i].a) << "trial " << trial << " i=" << i;
        ASSERT_EQ(got[i].b, expected[i].b) << "trial " << trial << " i=" << i;
        ASSERT_EQ(got[i].source_net, expected[i].source_net);
      }
    }
    // total_length must reproduce mst_wirelength exactly (same summation
    // order), so sharing one decomposition between the wirelength and
    // congestion terms cannot change the objective.
    EXPECT_EQ(total_length(decomposer.decompose(netlist, placement)),
              mst_wirelength(netlist, placement));
  }
}

TEST(Decompose, RejectsMismatchedPlacement) {
  const Netlist netlist = make_mcnc("hp");
  Placement placement;  // empty
  EXPECT_THROW(decompose_to_two_pin(netlist, placement),
               std::invalid_argument);
}

}  // namespace
}  // namespace ficon
