// Formula 3 validation: exact IR-region crossing probabilities.
//
// Pins the library's exit-edge computation against (a) the paper's worked
// example of Figure 6 (245 routes of 252), (b) a literal transcription of
// the paper's Formula 3 for both net types, and (c) the avoidance-DP
// oracle, over exhaustive region sweeps.
#include <cmath>

#include <gtest/gtest.h>

#include "congestion/path_prob.hpp"
#include "numeric/factorial.hpp"

namespace ficon {
namespace {

/// Literal Formula 3 with plain double binomials. Only valid when the
/// region does NOT cover the sink-side pin (the library handles that case
/// by frame rotation); tests restrict accordingly.
double paper_region_probability(int g1, int g2, bool type2, GridRect r) {
  const auto ta = [&](int x, int y) -> double {
    if (x < 0 || x >= g1 || y < 0 || y >= g2) return 0.0;
    return type2 ? choose_double(x + (g2 - 1 - y), x)
                 : choose_double(x + y, y);
  };
  const auto tb = [&](int x, int y) -> double {
    if (x < 0 || x >= g1 || y < 0 || y >= g2) return 0.0;
    return type2 ? choose_double((g1 - 1 - x) + y, g1 - 1 - x)
                 : choose_double(g1 + g2 - 2 - x - y, g2 - 1 - y);
  };
  const double total = type2 ? ta(g1 - 1, 0) : ta(g1 - 1, g2 - 1);
  double routes = 0.0;
  if (!type2) {
    // Type I: exits through the top edge (y2 -> y2+1) and right edge.
    for (int x = r.xlo; x <= r.xhi; ++x) routes += ta(x, r.yhi) * tb(x, r.yhi + 1);
    for (int y = r.ylo; y <= r.yhi; ++y) routes += ta(r.xhi, y) * tb(r.xhi + 1, y);
  } else {
    // Type II: exits through the bottom edge (y1 -> y1-1) and right edge.
    for (int x = r.xlo; x <= r.xhi; ++x) routes += ta(x, r.ylo) * tb(x, r.ylo - 1);
    for (int y = r.ylo; y <= r.yhi; ++y) routes += ta(r.xhi, y) * tb(r.xhi + 1, y);
  }
  return routes / total;
}

TEST(Formula3, Figure6WorkedExample) {
  // Paper, Figure 6: routing range of 6x6 grids, pins in cells (0,0) and
  // (5,5); the IR-grid covering columns 1..3 and rows 1..4 (0-based) is
  // crossed by 245 of the C(10,5) = 252 routes.
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{6, 6, false};
  const GridRect region{1, 1, 3, 4};
  EXPECT_NEAR(prob.region_probability_exact(s, region), 245.0 / 252.0, 1e-12);
  EXPECT_NEAR(prob.region_probability_oracle(s, region), 245.0 / 252.0, 1e-12);
  EXPECT_NEAR(paper_region_probability(6, 6, false, region), 245.0 / 252.0,
              1e-12);
}

class RegionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(RegionSweep, MatchesOracleForAllRegions) {
  const auto [g1, g2, type2] = GetParam();
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{g1, g2, type2};
  for (int x1 = 0; x1 < g1; ++x1) {
    for (int x2 = x1; x2 < g1; ++x2) {
      for (int y1 = 0; y1 < g2; ++y1) {
        for (int y2 = y1; y2 < g2; ++y2) {
          const GridRect r{x1, y1, x2, y2};
          EXPECT_NEAR(prob.region_probability_exact(s, r),
                      prob.region_probability_oracle(s, r), 1e-10)
              << "region " << r;
        }
      }
    }
  }
}

TEST_P(RegionSweep, MatchesPaperFormulaAwayFromSinkPin) {
  const auto [g1, g2, type2] = GetParam();
  if (g1 == 1 || g2 == 1) GTEST_SKIP() << "degenerate";
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{g1, g2, type2};
  // The "sink" in exit-edge terms: type I (g1-1, g2-1), type II (g1-1, 0).
  const int sink_y = type2 ? 0 : g2 - 1;
  for (int x1 = 0; x1 < g1; ++x1) {
    for (int x2 = x1; x2 < g1; ++x2) {
      for (int y1 = 0; y1 < g2; ++y1) {
        for (int y2 = y1; y2 < g2; ++y2) {
          const GridRect r{x1, y1, x2, y2};
          if (r.contains(g1 - 1, sink_y)) continue;
          EXPECT_NEAR(prob.region_probability_exact(s, r),
                      paper_region_probability(g1, g2, type2, r), 1e-10)
              << "region " << r;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RegionSweep,
    ::testing::Combine(::testing::Values(2, 3, 6, 9),
                       ::testing::Values(2, 5, 8), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, int, bool>>& sweep) {
      return "g1_" + std::to_string(std::get<0>(sweep.param)) + "_g2_" +
             std::to_string(std::get<1>(sweep.param)) +
             (std::get<2>(sweep.param) ? "_type2" : "_type1");
    });

TEST(Formula3, WholeRangeIsCertain) {
  LogFactorialTable table;
  const PathProbability prob(table);
  for (const bool type2 : {false, true}) {
    const NetGridShape s{7, 4, type2};
    EXPECT_NEAR(prob.region_probability_exact(s, GridRect{0, 0, 6, 3}), 1.0,
                1e-12);
  }
}

TEST(Formula3, PinCoveringRegionsAreCertain) {
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape t1{8, 6, false};
  EXPECT_NEAR(prob.region_probability_exact(t1, GridRect{0, 0, 2, 1}), 1.0,
              1e-12);
  EXPECT_NEAR(prob.region_probability_exact(t1, GridRect{6, 4, 7, 5}), 1.0,
              1e-12);
  const NetGridShape t2{8, 6, true};
  EXPECT_NEAR(prob.region_probability_exact(t2, GridRect{0, 4, 1, 5}), 1.0,
              1e-12);
  EXPECT_NEAR(prob.region_probability_exact(t2, GridRect{6, 0, 7, 2}), 1.0,
              1e-12);
}

TEST(Formula3, FullWidthOrHeightStripesAreCertain) {
  // A stripe spanning the full width (or height) of the routing range is
  // crossed by every monotone route.
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{9, 7, false};
  EXPECT_NEAR(prob.region_probability_exact(s, GridRect{0, 3, 8, 4}), 1.0,
              1e-12);
  EXPECT_NEAR(prob.region_probability_exact(s, GridRect{4, 0, 5, 6}), 1.0,
              1e-12);
}

TEST(Formula3, DisjointRegionIsZero) {
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{5, 5, false};
  EXPECT_EQ(prob.region_probability_exact(s, GridRect{7, 7, 9, 9}), 0.0);
  EXPECT_EQ(prob.region_probability_exact(s, GridRect{-4, -4, -1, -1}), 0.0);
}

TEST(Formula3, ClipsOverhangingRegions) {
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{6, 6, false};
  // Same effective region as Figure 6 after clipping.
  EXPECT_NEAR(prob.region_probability_exact(s, GridRect{1, 1, 3, 4}),
              prob.region_probability_exact(s, GridRect{1, 1, 3, 4}), 0.0);
  const double clipped =
      prob.region_probability_exact(s, GridRect{-3, 1, 3, 4});
  EXPECT_NEAR(clipped, prob.region_probability_exact(s, GridRect{0, 1, 3, 4}),
              1e-12);
}

TEST(Formula3, MonotoneInRegionGrowth) {
  // Growing a region can only increase the crossing probability.
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{10, 8, false};
  double prev = prob.region_probability_exact(s, GridRect{4, 3, 4, 3});
  for (int grow = 1; grow <= 3; ++grow) {
    const GridRect r{4 - grow, 3 - grow, 4 + grow, 3 + grow};
    const double p = prob.region_probability_exact(s, r);
    EXPECT_GE(p + 1e-12, prev);
    prev = p;
  }
}

TEST(Formula3, SinglePointRegionMatchesFormula2) {
  LogFactorialTable table;
  const PathProbability prob(table);
  for (const bool type2 : {false, true}) {
    const NetGridShape s{7, 6, type2};
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 7; ++x) {
        EXPECT_NEAR(prob.region_probability_exact(s, GridRect{x, y, x, y}),
                    prob.cell_probability(s, x, y), 1e-10)
            << x << ',' << y << " type2=" << type2;
      }
    }
  }
}

TEST(Formula3, DegenerateNetsAlwaysCross) {
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape row{6, 1, false};
  EXPECT_EQ(prob.region_probability_exact(row, GridRect{2, 0, 3, 0}), 1.0);
  const NetGridShape point{1, 1, false};
  EXPECT_EQ(prob.region_probability_exact(point, GridRect{0, 0, 0, 0}), 1.0);
  EXPECT_EQ(prob.region_probability_exact(point, GridRect{1, 1, 2, 2}), 0.0);
}

TEST(Formula3, RegionCoversPinDetection) {
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape t1{6, 6, false};
  EXPECT_TRUE(prob.region_covers_pin(t1, GridRect{0, 0, 1, 1}));
  EXPECT_TRUE(prob.region_covers_pin(t1, GridRect{5, 5, 5, 5}));
  EXPECT_FALSE(prob.region_covers_pin(t1, GridRect{1, 1, 4, 4}));
  const NetGridShape t2{6, 6, true};
  EXPECT_TRUE(prob.region_covers_pin(t2, GridRect{0, 5, 0, 5}));
  EXPECT_TRUE(prob.region_covers_pin(t2, GridRect{4, 0, 5, 1}));
  EXPECT_FALSE(prob.region_covers_pin(t2, GridRect{1, 1, 4, 4}));
}

TEST(Formula3, LargeRangeStaysFinite) {
  // mm-scale net on a 10 um judging grid: binomials near C(1000, 500).
  LogFactorialTable table;
  const PathProbability prob(table);
  const NetGridShape s{500, 500, false};
  const double p = prob.region_probability_exact(s, GridRect{200, 200, 320, 340});
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
  // The central band catches most routes.
  EXPECT_GT(p, 0.9);
}

}  // namespace
}  // namespace ficon
