// End-to-end integration tests: miniature versions of the paper's three
// experiments plus full-pipeline smoke checks, so the bench harness's
// plumbing is covered by ctest.
#include <sstream>

#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "circuit/parser.hpp"
#include "congestion/fixed_grid.hpp"
#include "congestion/irregular_grid.hpp"
#include "core/floorplanner.hpp"
#include "exp/experiment.hpp"
#include "route/two_pin.hpp"
#include "router/global_router.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace ficon {
namespace {

FloorplanOptions mini_options() {
  FloorplanOptions o;
  o.effort = 0.15;
  o.anneal.cooling = 0.8;
  o.anneal.stop_temperature_ratio = 1e-3;
  o.anneal.max_stall_temperatures = 4;
  return o;
}

TEST(Integration, ExperimentOnePipeline) {
  // Two floorplanners, judged by the referee — Table 1/2/3 plumbing.
  const Netlist netlist = make_mcnc("hp");
  const FixedGridModel judge = make_judging_model(25.0);

  const SeedSweep base = run_seed_sweep(netlist, mini_options(), 2, judge);
  FloorplanOptions driven = mini_options();
  driven.objective.gamma = 0.4;
  driven.objective.model = CongestionModelKind::kIrregularGrid;
  const SeedSweep cgt = run_seed_sweep(netlist, driven, 2, judge);

  ASSERT_EQ(base.runs.size(), 2u);
  ASSERT_EQ(cgt.runs.size(), 2u);
  EXPECT_GT(base.mean_judging(), 0.0);
  EXPECT_GT(cgt.mean_judging(), 0.0);
  EXPECT_GT(cgt.mean_congestion(), 0.0);
  // No quality assertion here (2 seeds of a tiny anneal are noise); the
  // statistical claim is covered by floorplanner_test and the benches.
}

TEST(Integration, ExperimentTwoPipeline) {
  // Snapshot trajectory scored by two judges — Figure 9 plumbing.
  const Netlist netlist = make_mcnc("hp");
  FloorplanOptions o = mini_options();
  o.objective.alpha = 0.0;
  o.objective.beta = 0.0;
  o.objective.gamma = 1.0;
  o.objective.model = CongestionModelKind::kIrregularGrid;
  const FixedGridModel fine = make_judging_model(25.0);
  const FixedGridModel coarse = make_judging_model(100.0);
  std::vector<double> a, b, c;
  Floorplanner(netlist, o).run([&](const TemperatureSnapshot& snap) {
    const auto nets = decompose_to_two_pin(netlist, snap.placement);
    a.push_back(snap.metrics.congestion);
    b.push_back(fine.cost(nets, snap.placement.chip));
    c.push_back(coarse.cost(nets, snap.placement.chip));
  });
  ASSERT_GE(a.size(), 3u);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (const double v : a) EXPECT_GE(v, 0.0);
}

TEST(Integration, ExperimentThreePipeline) {
  // Congestion-only optimization under both models — Table 4/5 plumbing.
  const Netlist netlist = make_mcnc("hp");
  const FixedGridModel judge = make_judging_model(25.0);
  for (const CongestionModelKind kind :
       {CongestionModelKind::kIrregularGrid, CongestionModelKind::kFixedGrid}) {
    FloorplanOptions o = mini_options();
    o.objective.alpha = 0.0;
    o.objective.beta = 0.0;
    o.objective.gamma = 1.0;
    o.objective.model = kind;
    const SeedSweep sweep = run_seed_sweep(netlist, o, 2, judge);
    EXPECT_GT(sweep.mean_congestion(), 0.0);
    EXPECT_GT(sweep.mean_judging(), 0.0);
  }
}

TEST(Integration, FileRoundTripThroughFloorplanner) {
  // Save a generated circuit, reload it, floorplan the reload: identical
  // netlist semantics must give an identical deterministic result.
  const Netlist original = make_mcnc("hp");
  std::stringstream buffer;
  save_netlist(original, buffer);
  const Netlist reloaded = parse_netlist(buffer);
  FloorplanOptions o = mini_options();
  o.seed = 11;
  const FloorplanSolution a = Floorplanner(original, o).run();
  const FloorplanSolution b = Floorplanner(reloaded, o).run();
  EXPECT_EQ(a.representation, b.representation);
  EXPECT_DOUBLE_EQ(a.metrics.area, b.metrics.area);
  EXPECT_DOUBLE_EQ(a.metrics.wirelength, b.metrics.wirelength);
}

TEST(Integration, FullStackRouteOfOptimizedFloorplan) {
  // Floorplan -> decompose -> estimate -> route: every subsystem touched.
  const Netlist netlist = make_mcnc("ami33");
  FloorplanOptions o = mini_options();
  o.objective.gamma = 0.4;
  o.objective.model = CongestionModelKind::kIrregularGrid;
  const FloorplanSolution sol = Floorplanner(netlist, o).run();
  const auto nets = decompose_to_two_pin(netlist, sol.placement);

  IrregularGridParams ir;
  const double ir_cost =
      IrregularGridModel(ir).cost(nets, sol.placement.chip);
  EXPECT_GT(ir_cost, 0.0);

  RouterParams rp;
  rp.pitch = 30.0;
  const RoutedCongestion routed =
      GlobalRouter(rp).route(nets, sol.placement.chip);
  EXPECT_GT(routed.max_usage(), 0.0);
  // Total routed usage equals the sum of per-net span path lengths — the
  // conservation law ties router and estimator to the same geometry.
  const GridSpec grid =
      GridSpec::from_pitch(sol.placement.chip, rp.pitch, rp.pitch);
  double expected = 0.0;
  for (const TwoPinNet& net : nets) {
    const SpannedNet s = span_net(grid, net);
    expected += s.shape.g1 + s.shape.g2 - 1;
  }
  double total = 0.0;
  for (const double u : routed.usage()) total += u;
  EXPECT_DOUBLE_EQ(total, expected);
}

TEST(Integration, SerialAndParallelEvaluationAgreeExactly) {
  // The serial path (FICON_THREADS=1) is the reference semantics; the
  // pool-parallel path must reproduce it bit-for-bit (ordered block
  // reduction, see util/thread_pool.hpp).
  const Netlist netlist = make_mcnc("hp");
  const FloorplanSolution sol = Floorplanner(netlist, mini_options()).run();
  const auto nets = decompose_to_two_pin(netlist, sol.placement);

  ThreadPool::set_global_threads(1);
  const IrregularCongestionMap serial_ir =
      IrregularGridModel().evaluate(nets, sol.placement.chip);
  const CongestionMap serial_fg =
      make_judging_model(50.0).evaluate(nets, sol.placement.chip);

  ThreadPool::set_global_threads(4);
  const IrregularCongestionMap parallel_ir =
      IrregularGridModel().evaluate(nets, sol.placement.chip);
  const CongestionMap parallel_fg =
      make_judging_model(50.0).evaluate(nets, sol.placement.chip);
  ThreadPool::set_global_threads(1);

  ASSERT_EQ(parallel_ir.cell_count(), serial_ir.cell_count());
  for (int iy = 0; iy < serial_ir.ny(); ++iy) {
    for (int ix = 0; ix < serial_ir.nx(); ++ix) {
      ASSERT_EQ(parallel_ir.flow(ix, iy), serial_ir.flow(ix, iy));
    }
  }
  ASSERT_EQ(parallel_fg.values(), serial_fg.values());
}

TEST(Integration, TerminalsShapeCongestionAtBoundary) {
  // Pads pull nets to the chip edge: a circuit with pads must register
  // non-zero congestion in the outermost ring of judging cells.
  const Netlist netlist = make_mcnc("apte");  // 73 pads
  ASSERT_GT(netlist.terminal_count(), 0u);
  const FloorplanSolution sol =
      Floorplanner(netlist, mini_options()).run();
  const auto nets = decompose_to_two_pin(netlist, sol.placement);
  const FixedGridModel judge = make_judging_model(100.0);
  const CongestionMap map = judge.evaluate(nets, sol.placement.chip);
  double boundary = 0.0;
  const int nx = map.grid().nx(), ny = map.grid().ny();
  for (int x = 0; x < nx; ++x) {
    boundary += map.at(x, 0) + map.at(x, ny - 1);
  }
  for (int y = 0; y < ny; ++y) {
    boundary += map.at(0, y) + map.at(nx - 1, y);
  }
  EXPECT_GT(boundary, 0.0);
}

}  // namespace
}  // namespace ficon
