// Geometry primitive tests.
#include <gtest/gtest.h>

#include "geom/interval.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace ficon {
namespace {

TEST(Point, Distances) {
  const Point a{1.0, 2.0};
  const Point b{4.0, 6.0};
  EXPECT_DOUBLE_EQ(manhattan(a, b), 7.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(manhattan(a, a), 0.0);
}

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{4.0, 6.0};
  EXPECT_EQ(a + b, (Point{5.0, 8.0}));
  EXPECT_EQ(b - a, (Point{3.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
}

TEST(Rect, SpanningNormalizesCorners) {
  const Rect r = Rect::spanning(Point{5.0, 1.0}, Point{2.0, 7.0});
  EXPECT_EQ(r, (Rect{2.0, 1.0, 5.0, 7.0}));
  EXPECT_TRUE(r.valid());
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 6.0);
  EXPECT_DOUBLE_EQ(r.area(), 18.0);
  EXPECT_DOUBLE_EQ(r.half_perimeter(), 9.0);
  EXPECT_EQ(r.center(), (Point{3.5, 4.0}));
}

TEST(Rect, DegenerateClassification) {
  EXPECT_TRUE(Rect::spanning(Point{1, 1}, Point{1, 1}).is_point());
  EXPECT_TRUE(Rect::spanning(Point{1, 1}, Point{5, 1}).is_segment());
  EXPECT_TRUE(Rect::spanning(Point{1, 1}, Point{1, 5}).is_segment());
  EXPECT_TRUE(Rect::spanning(Point{1, 1}, Point{5, 5}).is_proper());
  EXPECT_FALSE(Rect::spanning(Point{1, 1}, Point{5, 1}).is_proper());
}

TEST(Rect, Containment) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));    // boundary counts
  EXPECT_TRUE(r.contains(Point{10, 10}));
  EXPECT_FALSE(r.contains(Point{10.001, 5}));
  EXPECT_TRUE(r.contains(Rect{2, 2, 10, 10}));
  EXPECT_FALSE(r.contains(Rect{2, 2, 10.5, 10}));
}

TEST(Rect, OverlapSemantics) {
  const Rect a{0, 0, 5, 5};
  const Rect b{5, 0, 10, 5};  // shares an edge with a
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps_interior(b));  // abutment is legal in packings
  const Rect c{4, 4, 6, 6};
  EXPECT_TRUE(a.overlaps_interior(c));
  const Rect d{6, 6, 8, 8};
  EXPECT_FALSE(a.overlaps(d));
}

TEST(Rect, IntersectionAndUnion) {
  const Rect a{0, 0, 5, 5};
  const Rect b{3, 2, 8, 9};
  EXPECT_EQ(a.intersection(b), (Rect{3, 2, 5, 5}));
  EXPECT_EQ(a.united(b), (Rect{0, 0, 8, 9}));
  const Rect disjoint{6, 6, 7, 7};
  EXPECT_FALSE(a.intersection(disjoint).valid());
}

TEST(Rect, Translation) {
  const Rect r{1, 2, 3, 4};
  EXPECT_EQ(r.translated(10, -2), (Rect{11, 0, 13, 2}));
}

TEST(GridRect, CountsAndContainment) {
  const GridRect r{2, 3, 5, 3};
  EXPECT_EQ(r.nx(), 4);
  EXPECT_EQ(r.ny(), 1);
  EXPECT_EQ(r.cell_count(), 4);
  EXPECT_TRUE(r.valid());
  EXPECT_TRUE(r.contains(2, 3));
  EXPECT_TRUE(r.contains(5, 3));
  EXPECT_FALSE(r.contains(6, 3));
  EXPECT_FALSE(r.contains(3, 4));
  EXPECT_FALSE((GridRect{3, 0, 2, 0}).valid());
}

TEST(Interval, Basics) {
  const Interval iv = Interval::spanning(7.0, 3.0);
  EXPECT_EQ(iv, (Interval{3.0, 7.0}));
  EXPECT_DOUBLE_EQ(iv.length(), 4.0);
  EXPECT_TRUE(iv.contains(3.0));
  EXPECT_TRUE(iv.contains(7.0));
  EXPECT_FALSE(iv.contains(7.5));
  EXPECT_TRUE(iv.overlaps(Interval{7.0, 9.0}));
  EXPECT_FALSE(iv.overlaps(Interval{7.5, 9.0}));
  EXPECT_EQ(iv.intersection(Interval{5.0, 9.0}), (Interval{5.0, 7.0}));
}

}  // namespace
}  // namespace ficon
