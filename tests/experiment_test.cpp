// Experiment harness: seed sweeps, aggregates and table formatting.
#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "exp/experiment.hpp"
#include "util/table.hpp"

namespace ficon {
namespace {

FloorplanOptions fast_options() {
  FloorplanOptions o;
  o.effort = 0.1;
  o.anneal.cooling = 0.75;
  o.anneal.max_stall_temperatures = 3;
  o.anneal.stop_temperature_ratio = 1e-2;
  return o;
}

TEST(SeedSweep, RunsAndAggregates) {
  const Netlist netlist = make_mcnc("hp");
  const FixedGridModel judge = make_judging_model(50.0);
  const SeedSweep sweep = run_seed_sweep(netlist, fast_options(), 3, judge);
  ASSERT_EQ(sweep.runs.size(), 3u);
  EXPECT_GT(sweep.mean_area(), 0.0);
  EXPECT_GT(sweep.mean_wirelength(), 0.0);
  EXPECT_GT(sweep.mean_judging(), 0.0);
  EXPECT_GT(sweep.mean_seconds(), 0.0);
  // Best = minimum cost over runs.
  const JudgedRun& best = sweep.best();
  for (const JudgedRun& r : sweep.runs) {
    EXPECT_LE(best.solution.metrics.cost, r.solution.metrics.cost);
  }
}

TEST(SeedSweep, SeedsDiffer) {
  const Netlist netlist = make_mcnc("hp");
  const FixedGridModel judge = make_judging_model(50.0);
  const SeedSweep sweep = run_seed_sweep(netlist, fast_options(), 2, judge);
  EXPECT_NE(sweep.runs[0].solution.expression.to_string(),
            sweep.runs[1].solution.expression.to_string());
}

TEST(SeedSweep, ReproducibleEndToEnd) {
  const Netlist netlist = make_mcnc("hp");
  const FixedGridModel judge = make_judging_model(50.0);
  const SeedSweep a = run_seed_sweep(netlist, fast_options(), 2, judge);
  const SeedSweep b = run_seed_sweep(netlist, fast_options(), 2, judge);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.runs[i].solution.metrics.area,
                     b.runs[i].solution.metrics.area);
    EXPECT_DOUBLE_EQ(a.runs[i].judging_cost, b.runs[i].judging_cost);
  }
}

TEST(SeedSweep, RequiresAtLeastOneSeed) {
  const Netlist netlist = make_mcnc("hp");
  const FixedGridModel judge = make_judging_model(50.0);
  EXPECT_THROW(run_seed_sweep(netlist, fast_options(), 0, judge),
               std::invalid_argument);
}

TEST(ExperimentConfig, ReadsEnvironment) {
  ::setenv("FICON_SEEDS", "7", 1);
  ::setenv("FICON_SCALE", "0.5", 1);
  ::setenv("FICON_CIRCUITS", "hp,ami33", 1);
  const ExperimentConfig c = experiment_config_from_env();
  EXPECT_EQ(c.seeds, 7);
  EXPECT_DOUBLE_EQ(c.scale, 0.5);
  ASSERT_EQ(c.circuits.size(), 2u);
  EXPECT_EQ(c.circuits[0], "hp");
  ::unsetenv("FICON_SEEDS");
  ::unsetenv("FICON_SCALE");
  ::unsetenv("FICON_CIRCUITS");
  const ExperimentConfig d = experiment_config_from_env();
  EXPECT_EQ(d.seeds, 3);
  EXPECT_EQ(d.circuits.size(), 5u);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"circuit", "area", "time"});
  t.add_row({"apte", "48.52", "36.7"});
  t.add_row({"ami33", "1.27", "196"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("circuit"), std::string::npos);
  EXPECT_NE(out.find("ami33"), std::string::npos);
  // All rows share the same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsBadRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_percent(0.12128), "12.13");
  EXPECT_EQ(fmt_general(123456.789, 4), "1.235e+05");
}

}  // namespace
}  // namespace ficon
