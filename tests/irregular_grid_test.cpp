// Irregular-Grid congestion model: end-to-end evaluation semantics.
#include <sstream>

#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "congestion/fixed_grid.hpp"
#include "congestion/irregular_grid.hpp"
#include "floorplan/slicing.hpp"
#include "route/two_pin.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ficon {
namespace {

const Rect kChip{0, 0, 1000, 1000};

IrregularGridParams fine_params() {
  IrregularGridParams p;
  p.grid_w = 10;
  p.grid_h = 10;
  return p;
}

TEST(IrregularGrid, SingleNetDecomposition) {
  // One net, one routing range: cut lines = range boundaries + chip
  // boundary -> 3x3 IR-cells, and only the central one (the range itself)
  // accumulates probability 1... no: the range spans exactly one IR-cell in
  // each direction between its own cut lines, crossed with probability 1?
  // The range covers several IR-cells only if other nets cut through it.
  // With a single net the range is exactly one IR-cell, covering both pins
  // -> probability 1.
  const IrregularGridModel model(fine_params());
  const std::vector<TwoPinNet> nets{{Point{300, 300}, Point{700, 600}, 0}};
  const IrregularCongestionMap map = model.evaluate(nets, kChip);
  EXPECT_EQ(map.nx(), 3);
  EXPECT_EQ(map.ny(), 3);
  EXPECT_NEAR(map.flow(1, 1), 1.0, 1e-12);  // the routing range
  EXPECT_EQ(map.flow(0, 0), 0.0);
  EXPECT_EQ(map.flow(2, 2), 0.0);
  EXPECT_NEAR(map.density(1, 1), 1.0 / (400.0 * 300.0), 1e-15);
}

TEST(IrregularGrid, TwoOverlappingNetsSubdivide) {
  // Two crossing routing ranges: each range is divided by the other's cut
  // lines; flows must stay within [0, 1] per net per cell and the overlap
  // cell must see contributions from both nets.
  const IrregularGridModel model(fine_params());
  const std::vector<TwoPinNet> nets{
      {Point{100, 400}, Point{900, 500}, 0},   // wide horizontal band
      {Point{450, 100}, Point{550, 900}, 1},   // tall vertical band
  };
  const IrregularCongestionMap map = model.evaluate(nets, kChip);
  // Cut lines: x = {0,100,450,550,900,1000}, y = {0,100,400,500,900,1000}.
  EXPECT_EQ(map.nx(), 5);
  EXPECT_EQ(map.ny(), 5);
  // The crossing cell [450..550] x [400..500] is covered by both nets:
  // band nets pass through their full cross-section with probability 1.
  EXPECT_NEAR(map.flow(2, 2), 2.0, 1e-9);
  // A cell on the horizontal band only.
  EXPECT_NEAR(map.flow(1, 2), 1.0, 1e-9);
  // A corner cell touched by neither.
  EXPECT_EQ(map.flow(0, 0), 0.0);
}

TEST(IrregularGrid, FlowBoundedByNetCount) {
  Rng rng(51);
  std::vector<TwoPinNet> nets;
  for (int i = 0; i < 40; ++i) {
    nets.push_back(TwoPinNet{Point{rng.uniform(0, 1000), rng.uniform(0, 1000)},
                             Point{rng.uniform(0, 1000), rng.uniform(0, 1000)},
                             i});
  }
  const IrregularGridModel model;
  const IrregularCongestionMap map = model.evaluate(nets, kChip);
  for (int iy = 0; iy < map.ny(); ++iy) {
    for (int ix = 0; ix < map.nx(); ++ix) {
      EXPECT_GE(map.flow(ix, iy), 0.0);
      EXPECT_LE(map.flow(ix, iy), static_cast<double>(nets.size()) + 1e-9);
    }
  }
}

TEST(IrregularGrid, ExactAndApproximateModesAgree) {
  Rng rng(52);
  std::vector<TwoPinNet> nets;
  for (int i = 0; i < 25; ++i) {
    nets.push_back(TwoPinNet{Point{rng.uniform(0, 1000), rng.uniform(0, 1000)},
                             Point{rng.uniform(0, 1000), rng.uniform(0, 1000)},
                             i});
  }
  IrregularGridParams approx_params = fine_params();
  approx_params.strategy = IrEvalStrategy::kTheorem1;
  IrregularGridParams exact_params = fine_params();
  exact_params.strategy = IrEvalStrategy::kExactPerRegion;
  const IrregularGridModel approx_model(approx_params);
  const IrregularGridModel exact_model(exact_params);
  const IrregularCongestionMap a = approx_model.evaluate(nets, kChip);
  const IrregularCongestionMap e = exact_model.evaluate(nets, kChip);
  ASSERT_EQ(a.nx(), e.nx());
  ASSERT_EQ(a.ny(), e.ny());
  for (int iy = 0; iy < a.ny(); ++iy) {
    for (int ix = 0; ix < a.nx(); ++ix) {
      // Pin-covering cells differ by design (1 vs the exact 1 — identical),
      // interior cells only by the Theorem 1 error.
      EXPECT_NEAR(a.flow(ix, iy), e.flow(ix, iy), 0.12)
          << "cell " << ix << ',' << iy;
    }
  }
  EXPECT_NEAR(a.top_fraction_cost(0.10), e.top_fraction_cost(0.10),
              0.10 * std::max(1e-9, e.top_fraction_cost(0.10)) + 1e-7);
}

TEST(IrregularGrid, BandedMatchesPerRegionExactly) {
  // The banded prefix-sum fast path must reproduce the per-region exact
  // evaluation to floating-point accuracy on every IR-cell, across random
  // workloads containing both net types and degenerate nets.
  Rng rng(56);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<TwoPinNet> nets;
    for (int i = 0; i < 30; ++i) {
      Point a{rng.uniform(0, 1000), rng.uniform(0, 1000)};
      Point b{rng.uniform(0, 1000), rng.uniform(0, 1000)};
      if (i % 7 == 0) b.x = a.x;  // sprinkle degenerate nets
      if (i % 11 == 0) b.y = a.y;
      nets.push_back(TwoPinNet{a, b, i});
    }
    IrregularGridParams banded_params = fine_params();
    banded_params.strategy = IrEvalStrategy::kBandedExact;
    IrregularGridParams exact_params = fine_params();
    exact_params.strategy = IrEvalStrategy::kExactPerRegion;
    const auto banded = IrregularGridModel(banded_params).evaluate(nets, kChip);
    const auto exact = IrregularGridModel(exact_params).evaluate(nets, kChip);
    ASSERT_EQ(banded.nx(), exact.nx());
    ASSERT_EQ(banded.ny(), exact.ny());
    for (int iy = 0; iy < banded.ny(); ++iy) {
      for (int ix = 0; ix < banded.nx(); ++ix) {
        ASSERT_NEAR(banded.flow(ix, iy), exact.flow(ix, iy), 1e-9)
            << "trial " << trial << " cell " << ix << ',' << iy;
      }
    }
  }
}

TEST(IrregularGrid, DegenerateNetsHandled) {
  const IrregularGridModel model(fine_params());
  const std::vector<TwoPinNet> nets{
      {Point{500, 500}, Point{500, 500}, 0},  // point
      {Point{100, 200}, Point{900, 200}, 1},  // horizontal segment
      {Point{300, 100}, Point{300, 900}, 2},  // vertical segment
  };
  const IrregularCongestionMap map = model.evaluate(nets, kChip);
  double total = 0.0;
  for (int iy = 0; iy < map.ny(); ++iy) {
    for (int ix = 0; ix < map.nx(); ++ix) total += map.flow(ix, iy);
  }
  EXPECT_GT(total, 0.0);  // all three degenerate nets registered somewhere
}

TEST(IrregularGrid, DegenerateNetsSplitEvenlyAcrossAdjacentCells) {
  // Regression: a snapped routing range that collapses onto an interior cut
  // line used to charge its whole crossing probability to one arbitrary
  // side of the line. The documented rule is 0.5/0.5 across the two
  // touching cells per collapsed axis (1.0 to the single neighbor at a chip
  // boundary), with weights multiplying when both axes collapse.
  const IrregularGridModel model(fine_params());

  // Vertical net exactly on the interior cut line x=300:
  // xs = {0, 300, 1000}, ys = {0, 100, 900, 1000}.
  const std::vector<TwoPinNet> vertical{{Point{300, 100}, Point{300, 900}, 0}};
  const IrregularCongestionMap v = model.evaluate(vertical, kChip);
  ASSERT_EQ(v.nx(), 2);
  ASSERT_EQ(v.ny(), 3);
  EXPECT_DOUBLE_EQ(v.flow(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(v.flow(1, 1), 0.5);
  EXPECT_EQ(v.flow(0, 0), 0.0);
  EXPECT_EQ(v.flow(1, 2), 0.0);

  // The same net on the chip's left edge has only one neighboring column,
  // which takes the full unit: xs = {0, 1000}.
  const std::vector<TwoPinNet> edge{{Point{0, 100}, Point{0, 900}, 0}};
  const IrregularCongestionMap e = model.evaluate(edge, kChip);
  ASSERT_EQ(e.nx(), 1);
  EXPECT_DOUBLE_EQ(e.flow(0, 1), 1.0);

  // Crossing degenerate nets plus a point net at their crossing: the point
  // collapses on both axes and charges 0.25 to each corner cell, so each of
  // the four cells around (300, 500) accumulates 0.5 + 0.5 + 0.25.
  const std::vector<TwoPinNet> cross{
      {Point{300, 100}, Point{300, 900}, 0},  // vertical on x=300
      {Point{100, 500}, Point{900, 500}, 1},  // horizontal on y=500
      {Point{300, 500}, Point{300, 500}, 2},  // point on the crossing
  };
  const IrregularCongestionMap c = model.evaluate(cross, kChip);
  // xs = {0, 100, 300, 900, 1000}, ys = {0, 100, 500, 900, 1000}.
  ASSERT_EQ(c.nx(), 4);
  ASSERT_EQ(c.ny(), 4);
  for (const int ix : {1, 2}) {
    for (const int iy : {1, 2}) {
      EXPECT_DOUBLE_EQ(c.flow(ix, iy), 1.25) << "cell " << ix << ',' << iy;
    }
  }
}

TEST(IrregularGrid, ScoreMemoNeverChangesResults) {
  // The per-net memo (score_cache_capacity) must be invisible in the
  // output: hits return the exact matrix a miss would recompute. Compare
  // memo-on vs memo-off bitwise for every strategy, and re-evaluate with a
  // warm thread-local memo (second pass is nearly all hits).
  Rng rng(57);
  std::vector<TwoPinNet> nets;
  for (int i = 0; i < 50; ++i) {
    Point a{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    Point b{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    if (i % 9 == 0) b.x = a.x;  // include degenerate shapes
    nets.push_back(TwoPinNet{a, b, i});
  }
  // Duplicates guarantee intra-evaluation hits as well.
  for (int i = 0; i < 15; ++i) nets.push_back(nets[static_cast<std::size_t>(i)]);
  for (const IrEvalStrategy strategy :
       {IrEvalStrategy::kBandedExact, IrEvalStrategy::kExactPerRegion,
        IrEvalStrategy::kTheorem1}) {
    IrregularGridParams memoized = fine_params();
    memoized.strategy = strategy;
    IrregularGridParams plain = memoized;
    plain.score_cache_capacity = 0;
    const auto on = IrregularGridModel(memoized).evaluate(nets, kChip);
    const auto off = IrregularGridModel(plain).evaluate(nets, kChip);
    const auto warm = IrregularGridModel(memoized).evaluate(nets, kChip);
    ASSERT_EQ(on.nx(), off.nx());
    ASSERT_EQ(on.ny(), off.ny());
    for (int iy = 0; iy < on.ny(); ++iy) {
      for (int ix = 0; ix < on.nx(); ++ix) {
        ASSERT_EQ(on.flow(ix, iy), off.flow(ix, iy))
            << "strategy " << static_cast<int>(strategy) << " cell " << ix
            << ',' << iy;
        ASSERT_EQ(on.flow(ix, iy), warm.flow(ix, iy))
            << "warm memo diverged at cell " << ix << ',' << iy;
      }
    }
  }
}

TEST(IrregularGrid, CostWeightsDensityByArea) {
  // Construct a map by hand: a tiny hot cell and a large cold cell. With
  // fraction 10% of a 1000x1000 chip (=100000 um^2), the hot cell (10000
  // um^2) is fully taken and the remainder comes from the next densest.
  IrregularCongestionMap map(CutLines({0, 100, 1000}, {0, 100, 1000}));
  map.add_flow(0, 0, 5.0);    // 100x100 cell, density 5e-4
  map.add_flow(1, 1, 10.0);   // 900x900 cell, density ~1.23e-5
  const double cost = map.top_fraction_cost(0.10);
  const double hot_density = 5.0 / (100.0 * 100.0);
  const double cold_density = 10.0 / (900.0 * 900.0);
  const double budget = 0.10 * 1000 * 1000;
  const double expected =
      (hot_density * 10000.0 + cold_density * (budget - 10000.0)) / budget;
  EXPECT_NEAR(cost, expected, 1e-15);
}

TEST(IrregularGrid, CostMonotonicInExtraNets) {
  Rng rng(53);
  std::vector<TwoPinNet> nets;
  for (int i = 0; i < 20; ++i) {
    nets.push_back(TwoPinNet{Point{rng.uniform(400, 600), rng.uniform(400, 600)},
                             Point{rng.uniform(400, 600), rng.uniform(400, 600)},
                             i});
  }
  const IrregularGridModel model;
  const double base = model.cost(nets, kChip);
  // Duplicate the hottest region's nets: cost must not decrease.
  std::vector<TwoPinNet> more = nets;
  more.insert(more.end(), nets.begin(), nets.end());
  EXPECT_GE(model.cost(more, kChip) + 1e-12, base);
}

TEST(IrregularGrid, TracksJudgingModelAcrossPlacements) {
  // The headline claim of Experiment 2: the IR-grid estimate moves with the
  // fine fixed-grid judging estimate. Compare rankings over random
  // placements of ami33.
  const Netlist netlist = make_mcnc("ami33");
  const SlicingPacker packer(netlist);
  Rng rng(54);
  PolishExpression expr =
      PolishExpression::initial(static_cast<int>(netlist.module_count()));
  IrregularGridParams params;
  params.grid_w = 30;
  params.grid_h = 30;
  const IrregularGridModel ir(params);
  const FixedGridModel judge = make_judging_model(10.0);
  std::vector<double> ir_costs, judge_costs;
  for (int i = 0; i < 12; ++i) {
    for (int k = 0; k < 30; ++k) expr.random_move(rng);
    const SlicingResult packed = packer.pack(expr);
    const auto nets = decompose_to_two_pin(netlist, packed.placement);
    ir_costs.push_back(ir.cost(nets, packed.placement.chip));
    judge_costs.push_back(judge.cost(nets, packed.placement.chip));
  }
  EXPECT_GT(pearson(ir_costs, judge_costs), 0.4);
}

TEST(IrregularGrid, CsvOutput) {
  const IrregularGridModel model(fine_params());
  const std::vector<TwoPinNet> nets{{Point{300, 300}, Point{700, 600}, 0}};
  const IrregularCongestionMap map = model.evaluate(nets, kChip);
  std::ostringstream csv;
  map.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("xlo,ylo,xhi,yhi,flow,density"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1 + map.cell_count());
}

TEST(IrregularGrid, MergeFactorReducesCellCount) {
  Rng rng(55);
  std::vector<TwoPinNet> nets;
  for (int i = 0; i < 30; ++i) {
    nets.push_back(TwoPinNet{Point{rng.uniform(0, 1000), rng.uniform(0, 1000)},
                             Point{rng.uniform(0, 1000), rng.uniform(0, 1000)},
                             i});
  }
  IrregularGridParams loose = fine_params();
  loose.merge_factor = 8.0;
  IrregularGridParams tight = fine_params();
  tight.merge_factor = 0.5;
  const auto coarse = IrregularGridModel(loose).evaluate(nets, kChip);
  const auto fine = IrregularGridModel(tight).evaluate(nets, kChip);
  EXPECT_LT(coarse.cell_count(), fine.cell_count());
}

TEST(IrregularGrid, RejectsBadParams) {
  IrregularGridParams p;
  p.grid_w = 0;
  EXPECT_THROW(IrregularGridModel{p}, std::invalid_argument);
  IrregularGridParams q;
  q.merge_factor = -1;
  EXPECT_THROW(IrregularGridModel{q}, std::invalid_argument);
}

}  // namespace
}  // namespace ficon
