// End-to-end tests of the ficond daemon: launch the real binary as a
// subprocess, speak the frame protocol over its Unix socket (or stdio),
// and check that daemon replies are bit-identical to in-process
// `run_oneshot` results — the whole point of the service layer.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/mcnc.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"

namespace {

using namespace ficon;
using service::DecodedReply;
using service::FrameStatus;
using service::ProtocolOp;
using service::Reply;
using service::ReplyStatus;
using service::Request;
using service::RequestKind;

std::string socket_path() {
  return "/tmp/ficond_test_" + std::to_string(::getpid()) + ".sock";
}

/// Connect to the daemon's socket, retrying while it boots.
int connect_with_retry(const std::string& path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

DecodedReply read_reply(int fd) {
  std::string payload;
  EXPECT_EQ(service::read_frame_fd(fd, &payload), FrameStatus::kOk);
  DecodedReply reply;
  std::string error;
  EXPECT_TRUE(service::decode_reply(payload, &reply, &error))
      << error << " in: " << payload;
  return reply;
}

Request evaluate_request(CongestionModelKind model, double gamma) {
  Request request;
  request.kind = RequestKind::kEvaluate;
  request.objective.gamma = gamma;
  request.objective.model = model;
  request.objective.irregular.grid_w = 30.0;
  request.objective.irregular.grid_h = 30.0;
  request.objective.fixed.grid_w = 100.0;
  request.objective.fixed.grid_h = 100.0;
  return request;
}

Request anneal_request(std::uint64_t seed, int seeds) {
  Request request;
  request.kind = RequestKind::kAnneal;
  request.objective.gamma = 0.4;
  request.objective.model = CongestionModelKind::kIrregularGrid;
  request.objective.irregular.grid_w = 30.0;
  request.objective.irregular.grid_h = 30.0;
  request.seed = seed;
  request.seeds = seeds;
  request.effort = 0.05;
  return request;
}

void expect_matches_oneshot(const Netlist& netlist, const Request& request,
                            const DecodedReply& daemon) {
  const Reply local = service::run_oneshot(netlist, request);
  ASSERT_EQ(local.status, ReplyStatus::kOk);
  ASSERT_EQ(daemon.status, "ok") << daemon.error;
  ASSERT_EQ(daemon.seeds.size(), local.seeds.size());
  for (std::size_t i = 0; i < local.seeds.size(); ++i) {
    EXPECT_EQ(daemon.seeds[i].seed, local.seeds[i].seed);
    // %.17g encoding round-trips doubles bit-exactly, so == is the
    // correct comparison — no tolerance.
    EXPECT_EQ(daemon.seeds[i].metrics.area, local.seeds[i].metrics.area);
    EXPECT_EQ(daemon.seeds[i].metrics.wirelength,
              local.seeds[i].metrics.wirelength);
    EXPECT_EQ(daemon.seeds[i].metrics.congestion,
              local.seeds[i].metrics.congestion);
    EXPECT_EQ(daemon.seeds[i].metrics.cost, local.seeds[i].metrics.cost);
    EXPECT_EQ(daemon.seeds[i].representation,
              local.seeds[i].representation);
  }
}

TEST(FicondTest, SocketServesConcurrentRequestsBitIdenticalToOneShot) {
  const std::string path = socket_path();
  const std::string cmd = std::string(FICOND_BINARY) +
                          " --circuit apte --socket " + path +
                          " --workers 4 2>&1";
  FILE* daemon = popen(cmd.c_str(), "r");
  ASSERT_NE(daemon, nullptr);

  const int fd = connect_with_retry(path);
  ASSERT_GE(fd, 0) << "could not connect to " << path;

  // Pipeline eight mixed requests on one connection before reading any
  // reply: the daemon must serve them concurrently and the replies (in
  // any order) must match the serial one-shot path bit for bit.
  std::map<std::int64_t, Request> requests;
  requests[1] = evaluate_request(CongestionModelKind::kIrregularGrid, 0.4);
  requests[2] = evaluate_request(CongestionModelKind::kFixedGrid, 0.4);
  requests[3] = evaluate_request(CongestionModelKind::kNone, 0.0);
  requests[4] = anneal_request(1, 1);
  requests[5] = anneal_request(2, 1);
  requests[6] = anneal_request(3, 2);  // sharded sweep
  requests[7] = anneal_request(4, 1);
  requests[8] = evaluate_request(CongestionModelKind::kIrregularGrid, 0.8);
  for (const auto& [id, request] : requests) {
    ASSERT_TRUE(
        service::write_frame_fd(fd, service::encode_request(id, request)));
  }

  std::map<std::int64_t, DecodedReply> replies;
  while (replies.size() < requests.size()) {
    const DecodedReply reply = read_reply(fd);
    EXPECT_TRUE(requests.count(reply.id)) << "unexpected id " << reply.id;
    EXPECT_FALSE(replies.count(reply.id)) << "duplicate id " << reply.id;
    replies[reply.id] = reply;
  }
  const Netlist netlist = make_mcnc("apte");
  for (const auto& [id, request] : requests) {
    SCOPED_TRACE("request id " + std::to_string(id));
    expect_matches_oneshot(netlist, request, replies[id]);
  }

  // Control ops: ping, stats, and a cancel with an unknown target.
  ASSERT_TRUE(service::write_frame_fd(
      fd, service::encode_control(100, ProtocolOp::kPing)));
  EXPECT_EQ(read_reply(fd).status, "ok");
  ASSERT_TRUE(service::write_frame_fd(
      fd, service::encode_control(101, ProtocolOp::kStats)));
  const DecodedReply stats = read_reply(fd);
  EXPECT_EQ(stats.status, "ok");
  EXPECT_GE(stats.stats.submitted, 8);
  EXPECT_GE(stats.stats.completed, 8);
  ASSERT_TRUE(
      service::write_frame_fd(fd, service::encode_cancel(102, 999)));
  EXPECT_EQ(read_reply(fd).status, "error");  // nothing to cancel

  // A malformed frame on a second connection kills only that connection.
  const int bad = connect_with_retry(path);
  ASSERT_GE(bad, 0);
  const char garbage[] = "oops\n";
  ASSERT_EQ(::write(bad, garbage, sizeof(garbage) - 1),
            static_cast<ssize_t>(sizeof(garbage) - 1));
  const DecodedReply bad_reply = read_reply(bad);
  EXPECT_EQ(bad_reply.status, "error");
  std::string leftover;
  EXPECT_EQ(service::read_frame_fd(bad, &leftover), FrameStatus::kEof);
  ::close(bad);

  // The first connection is unaffected; shut the daemon down through it.
  ASSERT_TRUE(service::write_frame_fd(
      fd, service::encode_control(103, ProtocolOp::kPing)));
  EXPECT_EQ(read_reply(fd).status, "ok");
  ASSERT_TRUE(service::write_frame_fd(
      fd, service::encode_control(104, ProtocolOp::kShutdown)));
  EXPECT_EQ(read_reply(fd).status, "ok");
  ::close(fd);

  // Drain output and check the daemon exited cleanly.
  char buffer[256];
  while (std::fgets(buffer, sizeof(buffer), daemon) != nullptr) {
  }
  const int status = pclose(daemon);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(FicondTest, StdioModeServesFramesOnStdout) {
  const std::string in_path =
      "/tmp/ficond_test_stdin_" + std::to_string(::getpid()) + ".txt";
  {
    std::ofstream in(in_path);
    service::write_frame(in, service::encode_control(1, ProtocolOp::kPing));
    service::write_frame(in, service::encode_control(2, ProtocolOp::kPing));
    service::write_frame(in,
                         service::encode_control(3, ProtocolOp::kShutdown));
  }
  const std::string cmd = std::string(FICOND_BINARY) +
                          " --circuit apte --stdio < " + in_path +
                          " 2>/dev/null";
  FILE* daemon = popen(cmd.c_str(), "r");
  ASSERT_NE(daemon, nullptr);
  std::string output;
  char buffer[256];
  while (std::fgets(buffer, sizeof(buffer), daemon) != nullptr) {
    output += buffer;
  }
  const int status = pclose(daemon);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  std::remove(in_path.c_str());

  std::istringstream stream(output);
  for (const std::int64_t id : {1, 2, 3}) {
    std::string payload;
    ASSERT_EQ(service::read_frame(stream, &payload), FrameStatus::kOk)
        << "frame " << id << " in output: " << output;
    DecodedReply reply;
    std::string error;
    ASSERT_TRUE(service::decode_reply(payload, &reply, &error)) << error;
    EXPECT_EQ(reply.id, id);
    EXPECT_EQ(reply.status, "ok");
  }
  std::string tail;
  EXPECT_EQ(service::read_frame(stream, &tail), FrameStatus::kEof);
}

TEST(FicondTest, UsageErrorsExitWithCodeTwo) {
  const std::string cmd = std::string(FICOND_BINARY) + " --stdio 2>&1";
  FILE* daemon = popen(cmd.c_str(), "r");  // missing --circuit
  ASSERT_NE(daemon, nullptr);
  std::string output;
  char buffer[256];
  while (std::fgets(buffer, sizeof(buffer), daemon) != nullptr) {
    output += buffer;
  }
  const int status = pclose(daemon);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
  EXPECT_NE(output.find("--circuit"), std::string::npos) << output;
}

}  // namespace
