// Observability layer: the telemetry must be a pure observer (enabling it
// never changes results, at any thread count), its counters must agree
// with the per-component stats they mirror, and the JSONL export must
// round-trip through the validator.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "congestion/score_cache.hpp"
#include "ficon.hpp"

namespace ficon {
namespace {

/// Every test starts from zeroed sinks and leaves tracing disabled so the
/// rest of the suite runs untraced.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::reset();
  }
  void TearDown() override {
    obs::set_trace_enabled(false);
    obs::reset();
    ThreadPool::set_global_threads(ThreadPool::env_threads());
  }
};

FloorplanOptions small_run_options() {
  FloorplanOptions options;
  options.seed = 7;
  options.effort = 0.05;
  options.objective.alpha = 1.0;
  options.objective.beta = 1.0;
  options.objective.gamma = 0.4;
  options.objective.model = CongestionModelKind::kIrregularGrid;
  options.objective.irregular.grid_w = 30.0;
  options.objective.irregular.grid_h = 30.0;
  return options;
}

TEST_F(ObsTest, TracingIsBitIdenticalAcrossToggleAndThreadCounts) {
  const Netlist netlist = make_mcnc("apte");
  const FloorplanOptions options = small_run_options();

  // Reference: tracing off, single thread.
  ThreadPool::set_global_threads(1);
  const FloorplanSolution reference = Floorplanner(netlist, options).run();

  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool::set_global_threads(threads);
    for (const bool tracing : {false, true}) {
      obs::set_trace_enabled(tracing);
      obs::reset();
      const FloorplanSolution sol = Floorplanner(netlist, options).run();
      EXPECT_EQ(sol.metrics.cost, reference.metrics.cost)
          << "threads=" << threads << " tracing=" << tracing;
      EXPECT_EQ(sol.metrics.area, reference.metrics.area)
          << "threads=" << threads << " tracing=" << tracing;
      EXPECT_EQ(sol.metrics.wirelength, reference.metrics.wirelength)
          << "threads=" << threads << " tracing=" << tracing;
      EXPECT_EQ(sol.metrics.congestion, reference.metrics.congestion)
          << "threads=" << threads << " tracing=" << tracing;
      obs::set_trace_enabled(false);
    }
  }
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  const Netlist netlist = make_mcnc("apte");
  ASSERT_FALSE(obs::trace_enabled());
  (void)Floorplanner(netlist, small_run_options()).run();
  const obs::TraceReport report = obs::capture();
  for (int c = 0; c < obs::kCounterCount; ++c) {
    EXPECT_EQ(report.counters[static_cast<std::size_t>(c)], 0)
        << obs::counter_name(static_cast<obs::Counter>(c));
  }
  EXPECT_TRUE(report.anneal.empty());
  for (int h = 0; h < obs::kHistCount; ++h) {
    EXPECT_EQ(report.hists[static_cast<std::size_t>(h)].count, 0)
        << obs::hist_name(static_cast<obs::Hist>(h));
  }
}

TEST_F(ObsTest, HistBucketIndexIsLogBaseTwo) {
  // Bucket 0 holds v <= 0 plus nothing else; bucket b >= 1 holds
  // [2^(b-1), 2^b). The JSONL bounds in report.cpp depend on exactly this
  // placement.
  EXPECT_EQ(obs::hist_bucket(-5), 0);
  EXPECT_EQ(obs::hist_bucket(0), 0);
  EXPECT_EQ(obs::hist_bucket(1), 1);
  EXPECT_EQ(obs::hist_bucket(2), 2);
  EXPECT_EQ(obs::hist_bucket(3), 2);
  EXPECT_EQ(obs::hist_bucket(4), 3);
  EXPECT_EQ(obs::hist_bucket(1023), 10);
  EXPECT_EQ(obs::hist_bucket(1024), 11);
  // Saturates at the last bucket instead of indexing out of range.
  EXPECT_EQ(obs::hist_bucket((1LL << 62) + 1), obs::kHistBuckets - 1);
}

TEST_F(ObsTest, LatencyHistogramsTrackPhaseCallCounts) {
  // The phase timers double as the latency histograms' feed: one sample
  // per ScopedPhase, so per-hist sample counts must equal phase calls.
  obs::set_trace_enabled(true);
  const Netlist netlist = make_mcnc("apte");
  (void)Floorplanner(netlist, small_run_options()).run();
  const obs::TraceReport report = obs::capture();

  EXPECT_EQ(report.hist(obs::Hist::kRepackNs).count,
            report.phase_call_count(obs::Phase::kPack));
  EXPECT_EQ(report.hist(obs::Hist::kDecomposeNs).count,
            report.phase_call_count(obs::Phase::kDecompose));
  EXPECT_EQ(report.hist(obs::Hist::kCongestionNs).count,
            report.phase_call_count(obs::Phase::kCongestion));
  // One accept-ratio sample per temperature with at least one proposal.
  long long proposing_temps = 0;
  for (const obs::AnnealEvent& e : report.anneal) {
    if (e.proposed > 0) ++proposing_temps;
  }
  EXPECT_EQ(report.hist(obs::Hist::kAcceptRatioPpm).count, proposing_temps);

  for (int h = 0; h < obs::kHistCount; ++h) {
    const obs::HistSnapshot& snap =
        report.hists[static_cast<std::size_t>(h)];
    long long total = 0;
    for (const long long b : snap.buckets) total += b;
    EXPECT_EQ(total, snap.count)
        << obs::hist_name(static_cast<obs::Hist>(h));
    if (snap.count > 0) {
      EXPECT_GE(snap.mean(), 0.0);
      EXPECT_LE(snap.quantile_upper_bound(0.5),
                snap.quantile_upper_bound(0.99));
    }
  }
  EXPECT_GT(report.hist(obs::Hist::kRepackNs).count, 0);
  EXPECT_GT(report.hist(obs::Hist::kAcceptRatioPpm).count, 0);
}

TEST_F(ObsTest, ScoreMemoCountersMatchItsOwnStats) {
  obs::set_trace_enabled(true);

  // Mirrors ScoreMemo.FindReturnsInsertedValue: one cold miss, one hit.
  ScoreMemo memo;
  memo.configure(4, 1);
  const ScoreMemo::Key key{1, 2, 3};
  EXPECT_EQ(memo.find(key), nullptr);
  memo.insert(key, ScoreMemo::Value{0.25});
  EXPECT_NE(memo.find(key), nullptr);

  obs::TraceReport report = obs::capture();
  EXPECT_EQ(report.counter(obs::Counter::kScoreMemoHits), memo.stats().hits);
  EXPECT_EQ(report.counter(obs::Counter::kScoreMemoMisses),
            memo.stats().misses);
  EXPECT_EQ(report.counter(obs::Counter::kScoreMemoHits), 1);
  EXPECT_EQ(report.counter(obs::Counter::kScoreMemoMisses), 1);
  EXPECT_EQ(report.counter(obs::Counter::kScoreMemoEvictions), 0);

  // Mirrors ScoreMemo.EvictsLeastRecentlyUsed: capacity 2, third insert
  // evicts exactly one entry.
  obs::reset();
  ScoreMemo lru;
  lru.configure(2, 1);
  lru.insert(ScoreMemo::Key{1}, ScoreMemo::Value{1.0});
  lru.insert(ScoreMemo::Key{2}, ScoreMemo::Value{2.0});
  lru.insert(ScoreMemo::Key{3}, ScoreMemo::Value{3.0});
  report = obs::capture();
  EXPECT_EQ(report.counter(obs::Counter::kScoreMemoEvictions),
            lru.stats().evictions);
  EXPECT_EQ(report.counter(obs::Counter::kScoreMemoEvictions), 1);
}

TEST_F(ObsTest, PackCacheCountersMatchItsOwnStats) {
  obs::set_trace_enabled(true);
  const Netlist netlist = make_mcnc("apte");
  SlicingPacker packer(netlist);
  PolishExpression expr =
      PolishExpression::initial(static_cast<int>(netlist.module_count()));
  Rng rng(3);
  (void)packer.pack_cached_ref(expr);  // cold: full rebuild
  for (int i = 0; i < 10; ++i) {
    expr.random_move(rng);
    (void)packer.pack_cached_ref(expr);
  }
  const obs::TraceReport report = obs::capture();
  const SlicingPacker::CacheStats& stats = packer.cache_stats();
  EXPECT_EQ(report.counter(obs::Counter::kPackCacheFullRebuilds),
            stats.full_rebuilds);
  EXPECT_EQ(report.counter(obs::Counter::kPackCacheIncremental),
            stats.incremental_packs);
  EXPECT_EQ(report.counter(obs::Counter::kPackCacheNodesRecomputed),
            stats.nodes_recomputed);
  EXPECT_EQ(report.counter(obs::Counter::kPackCacheNodesTotal),
            stats.nodes_total);
  EXPECT_GE(stats.full_rebuilds, 1);
}

TEST_F(ObsTest, AnnealEventsAreConsistentWithCounterTotals) {
  obs::set_trace_enabled(true);
  const Netlist netlist = make_mcnc("apte");
  (void)Floorplanner(netlist, small_run_options()).run();
  const obs::TraceReport report = obs::capture();

  EXPECT_EQ(report.counter(obs::Counter::kAnnealRuns), 1);
  EXPECT_EQ(report.counter(obs::Counter::kAnnealTemperatures),
            static_cast<long long>(report.anneal.size()));
  long long proposed = 0;
  long long accepted = 0;
  for (const obs::AnnealEvent& e : report.anneal) {
    proposed += e.proposed;
    accepted += e.accepted;
    long long by_kind = 0;
    for (const long long k : e.proposed_by_kind) by_kind += k;
    EXPECT_EQ(by_kind, e.proposed);
    by_kind = 0;
    for (const long long k : e.accepted_by_kind) by_kind += k;
    EXPECT_EQ(by_kind, e.accepted);
    EXPECT_LE(e.accepted, e.proposed);
    EXPECT_LE(e.uphill_accepted, e.accepted);
  }
  EXPECT_EQ(report.counter(obs::Counter::kAnnealMovesProposed), proposed);
  EXPECT_EQ(report.counter(obs::Counter::kAnnealMovesAccepted), accepted);
  EXPECT_GT(proposed, 0);

  // The phases the facade wraps all ran.
  EXPECT_GT(report.phase_call_count(obs::Phase::kPack), 0);
  EXPECT_GT(report.phase_call_count(obs::Phase::kDecompose), 0);
  EXPECT_GT(report.phase_call_count(obs::Phase::kCongestion), 0);
  EXPECT_GT(report.counter(obs::Counter::kIrEvaluations), 0);
}

TEST_F(ObsTest, JsonlExportRoundTripsThroughValidator) {
  obs::set_trace_enabled(true);
  ThreadPool::set_global_threads(2);
  const Netlist netlist = make_mcnc("apte");
  const FloorplanSolution sol =
      Floorplanner(netlist, small_run_options()).run();
  const obs::TraceReport report = obs::capture();

  std::ostringstream jsonl;
  obs::write_jsonl(jsonl, report, "obs_test");
  obs::write_solution_jsonl(jsonl, sol.metrics.area, sol.metrics.wirelength,
                            sol.metrics.congestion, sol.metrics.cost,
                            sol.seconds);
  std::istringstream in(jsonl.str());
  std::string error;
  EXPECT_TRUE(obs::validate_trace(in, &error)) << error;

  // The export carries records from every instrumented layer.
  const std::string text = jsonl.str();
  EXPECT_NE(text.find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"anneal_temperature\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"cache\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"strategy\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"thread_pool\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"solution\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"hist\""), std::string::npos);

  // The human summary renders without throwing and mentions each table.
  std::ostringstream summary;
  obs::write_summary(summary, report);
  EXPECT_NE(summary.str().find("annealer"), std::string::npos);
  EXPECT_NE(summary.str().find("cache"), std::string::npos);
  EXPECT_NE(summary.str().find("strategy"), std::string::npos);
  EXPECT_NE(summary.str().find("histogram"), std::string::npos);
}

TEST_F(ObsTest, ResetZeroesEverything) {
  obs::set_trace_enabled(true);
  obs::count(obs::Counter::kIrEvaluations, 5);
  obs::record_hist(obs::Hist::kRepackNs, 1234);
  obs::AnnealEvent event;
  event.run = obs::next_anneal_run();
  obs::record_anneal(event);
  obs::reset();
  const obs::TraceReport report = obs::capture();
  EXPECT_EQ(report.counter(obs::Counter::kIrEvaluations), 0);
  EXPECT_TRUE(report.anneal.empty());
  EXPECT_EQ(report.hist(obs::Hist::kRepackNs).count, 0);
  EXPECT_EQ(report.hist(obs::Hist::kRepackNs).sum, 0);
  EXPECT_EQ(obs::next_anneal_run(), 0);  // run ids restart after reset
}

}  // namespace
}  // namespace ficon
