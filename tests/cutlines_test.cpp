// Cut-line construction and merging (algorithm steps 1-2, Figure 5).
#include <gtest/gtest.h>

#include "congestion/cutlines.hpp"
#include "util/rng.hpp"

namespace ficon {
namespace {

const Rect kChip{0, 0, 1000, 1000};

TEST(MergeLines, KeepsWellSeparatedLines) {
  const auto merged = merge_lines({200, 500, 800}, 0, 1000, 60);
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_DOUBLE_EQ(merged.front(), 0);
  EXPECT_DOUBLE_EQ(merged[1], 200);
  EXPECT_DOUBLE_EQ(merged[2], 500);
  EXPECT_DOUBLE_EQ(merged[3], 800);
  EXPECT_DOUBLE_EQ(merged.back(), 1000);
}

TEST(MergeLines, ClustersCloseLinesToTheirMean) {
  const auto merged = merge_lines({300, 310, 320, 700}, 0, 1000, 60);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_DOUBLE_EQ(merged[1], 310);  // mean of the cluster
  EXPECT_DOUBLE_EQ(merged[2], 700);
}

TEST(MergeLines, PinsChipBoundaries) {
  // Lines hugging a boundary are swallowed by it.
  const auto merged = merge_lines({10, 20, 990}, 0, 1000, 60);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged.front(), 0);
  EXPECT_DOUBLE_EQ(merged.back(), 1000);
}

TEST(MergeLines, ZeroGapKeepsAllDistinctLines) {
  // Regression: min_gap == 0 (merging disabled) must terminate and keep
  // every distinct interior coordinate.
  const auto merged = merge_lines({100, 100, 250, 400, 400, 990}, 0, 1000, 0);
  ASSERT_EQ(merged.size(), 6u);  // lo, 100, 250, 400, 990, hi
  EXPECT_DOUBLE_EQ(merged[1], 100);
  EXPECT_DOUBLE_EQ(merged[2], 250);
  EXPECT_DOUBLE_EQ(merged[3], 400);
  EXPECT_DOUBLE_EQ(merged[4], 990);
}

TEST(MergeLines, ResultSortedWithMinimumSpacing) {
  // Property the model relies on: NO two merged lines — interior or
  // boundary — are closer than the full merge gap, so every IR-cell is at
  // least min_gap wide. (Regression: the pre-pooling implementation only
  // rejected representatives within half a gap of their predecessor, so
  // chained clusters produced thinner cells.)
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> coords;
    const int n = rng.uniform_int(0, 60);
    for (int i = 0; i < n; ++i) coords.push_back(rng.uniform(0, 1000));
    const double gap = rng.uniform(10, 120);
    const auto merged = merge_lines(coords, 0, 1000, gap);
    ASSERT_GE(merged.size(), 2u);
    EXPECT_DOUBLE_EQ(merged.front(), 0);
    EXPECT_DOUBLE_EQ(merged.back(), 1000);
    for (std::size_t i = 1; i < merged.size(); ++i) {
      EXPECT_GE(merged[i] - merged[i - 1], gap - 1e-9)
          << "trial " << trial << " i=" << i;
    }
  }
}

TEST(MergeLines, ChainedClustersStillRespectGap) {
  // Regression for the half-gap guard: greedy clustering splits
  // {500, 590, 600} at 600 (600 - 500 >= gap), and the two cluster means
  // (545 and 600) are 55 apart — more than gap/2, so the old guard kept
  // both and produced a 55-wide IR-cell. Pooling merges them into one
  // weighted mean instead.
  const auto merged = merge_lines({500, 590, 600}, 0, 1000, 100);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_NEAR(merged[1], (500.0 + 590.0 + 600.0) / 3.0, 1e-12);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_GE(merged[i] - merged[i - 1], 100.0 - 1e-9);
  }
}

TEST(MergeLines, EveryInputSnapsWithinTwoGaps) {
  // A pooled cluster spans at most a few gap-widths, so no original cut
  // line may end up farther than two merge gaps from a representative.
  // (One gap was the bound before backward pooling; the extra slack is the
  // price of guaranteeing full-gap cell widths above.)
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> coords;
    for (int i = 0; i < 40; ++i) coords.push_back(rng.uniform(0, 1000));
    const double gap = 50;
    const auto merged = merge_lines(coords, 0, 1000, gap);
    for (const double c : coords) {
      double nearest = 1e300;
      for (const double m : merged) nearest = std::min(nearest, std::abs(m - c));
      EXPECT_LE(nearest, 2 * gap + 1e-9) << "coord " << c;
    }
  }
}

TEST(CutLines, NearestLookup) {
  const CutLines lines({0, 100, 250, 1000}, {0, 400, 1000});
  EXPECT_EQ(lines.nearest_x(-50), 0);
  EXPECT_EQ(lines.nearest_x(40), 0);
  EXPECT_EQ(lines.nearest_x(60), 1);
  EXPECT_EQ(lines.nearest_x(100), 1);
  EXPECT_EQ(lines.nearest_x(180), 2);
  EXPECT_EQ(lines.nearest_x(9999), 3);
  EXPECT_EQ(lines.nearest_y(400), 1);
}

TEST(CutLines, CellGeometry) {
  const CutLines lines({0, 100, 250, 1000}, {0, 400, 1000});
  EXPECT_EQ(lines.nx(), 3);
  EXPECT_EQ(lines.ny(), 2);
  EXPECT_EQ(lines.cell_count(), 6);
  EXPECT_EQ(lines.cell_rect(0, 0), (Rect{0, 0, 100, 400}));
  EXPECT_EQ(lines.cell_rect(2, 1), (Rect{250, 400, 1000, 1000}));
  EXPECT_THROW(lines.cell_rect(3, 0), std::invalid_argument);
}

TEST(CutLines, RejectsUnsortedOrEmpty) {
  EXPECT_THROW(CutLines({100, 0}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(CutLines({0}, {0, 1}), std::invalid_argument);
}

TEST(BuildCutlines, FigureFiveStructure) {
  // Two disjoint routing ranges: each contributes two lines per axis; with
  // the chip boundary that is up to 6 lines per axis (5x5 IR-cells).
  const std::vector<TwoPinNet> nets{
      {Point{100, 100}, Point{300, 400}, 0},
      {Point{600, 500}, Point{900, 800}, 1},
  };
  const CutLines lines = build_cutlines(nets, kChip, 20, 20);
  EXPECT_EQ(lines.xs().size(), 6u);
  EXPECT_EQ(lines.ys().size(), 6u);
  // Every routing-range boundary must be present as a cut line.
  for (const double v : {100.0, 300.0, 600.0, 900.0}) {
    double nearest = 1e300;
    for (const double m : lines.xs()) nearest = std::min(nearest, std::abs(m - v));
    EXPECT_LE(nearest, 1e-9) << v;
  }
}

TEST(BuildCutlines, SharedBoundariesDeduplicate) {
  // Nets sharing a pin x-coordinate produce one line, not two.
  const std::vector<TwoPinNet> nets{
      {Point{200, 100}, Point{500, 300}, 0},
      {Point{200, 600}, Point{700, 900}, 1},
  };
  const CutLines lines = build_cutlines(nets, kChip, 20, 20);
  int near_200 = 0;
  for (const double m : lines.xs()) {
    if (std::abs(m - 200) < 1e-9) ++near_200;
  }
  EXPECT_EQ(near_200, 1);
}

TEST(BuildCutlines, ClampsRangesOutsideChip) {
  const std::vector<TwoPinNet> nets{{Point{-50, 200}, Point{1200, 700}, 0}};
  const CutLines lines = build_cutlines(nets, kChip, 20, 20);
  EXPECT_DOUBLE_EQ(lines.xs().front(), 0);
  EXPECT_DOUBLE_EQ(lines.xs().back(), 1000);
  for (const double x : lines.xs()) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(BuildCutlines, EmptyNetListGivesSingleCell) {
  const CutLines lines = build_cutlines({}, kChip, 20, 20);
  EXPECT_EQ(lines.cell_count(), 1);
}

}  // namespace
}  // namespace ficon
