// Heat-map export: the SVG and feature dumps must be pure, deterministic
// functions of the flow field — byte-identical across thread counts and
// repeated runs — and the per-cell quantities (capacity, usage, overflow,
// crossing nets) must match the field they view bit for bit.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ficon.hpp"
#include "obs/json.hpp"

namespace ficon {
namespace {

/// Deterministic apte floorplan + decomposed nets shared by the tests.
struct Workload {
  Netlist netlist = make_mcnc("apte");
  Placement placement;
  std::vector<TwoPinNet> nets;

  Workload() {
    SlicingPacker packer(netlist);
    const PolishExpression expr =
        PolishExpression::initial(static_cast<int>(netlist.module_count()));
    placement = packer.pack(expr).placement;
    const auto span = decompose_to_two_pin(netlist, placement);
    nets.assign(span.begin(), span.end());
  }
};

std::string render_svg(const CongestionModel& model, const Workload& w) {
  const std::unique_ptr<FlowField> field =
      model.evaluate_field(w.nets, w.placement.chip);
  HeatMapSource source(*field, model.name());
  source.set_nets(w.nets);
  std::ostringstream os;
  source.write_svg(os);
  return os.str();
}

class HeatMapTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::set_global_threads(ThreadPool::env_threads());
  }
};

TEST_F(HeatMapTest, SvgIsByteIdenticalAcrossThreadCountsAndRuns) {
  const Workload w;
  const IrregularGridParams ir_params;
  const FixedGridParams fixed_params;
  for (const CongestionModelKind kind :
       {CongestionModelKind::kIrregularGrid,
        CongestionModelKind::kFixedGrid}) {
    const std::unique_ptr<CongestionModel> model =
        make_congestion_model(kind, ir_params, fixed_params);
    ASSERT_NE(model, nullptr);

    ThreadPool::set_global_threads(1);
    const std::string reference = render_svg(*model, w);
    ASSERT_FALSE(reference.empty());
    EXPECT_NE(reference.find("<svg"), std::string::npos);
    EXPECT_NE(reference.find("</svg>"), std::string::npos);
    EXPECT_NE(reference.find(model->name()), std::string::npos);

    for (const int threads : {1, 2, 4, 8}) {
      ThreadPool::set_global_threads(threads);
      // Re-evaluate the field from scratch at this thread count, twice:
      // run-to-run and thread-count determinism in one check.
      EXPECT_EQ(render_svg(*model, w), reference)
          << model->name() << " threads=" << threads;
      EXPECT_EQ(render_svg(*model, w), reference)
          << model->name() << " threads=" << threads << " (repeat)";
    }
  }
}

TEST_F(HeatMapTest, CellValuesMatchTheUnderlyingField) {
  const Workload w;
  const IrregularGridModel model;
  const std::unique_ptr<FlowField> field =
      model.evaluate_field(w.nets, w.placement.chip);
  HeatMapSource source(*field, model.name());
  source.set_nets(w.nets);

  double total_flow = 0.0, total_area = 0.0;
  for (int cy = 0; cy < field->ny(); ++cy) {
    for (int cx = 0; cx < field->nx(); ++cx) {
      total_flow += field->value_at(cx, cy);
      total_area += field->cell_rect(cx, cy).area();
    }
  }
  EXPECT_EQ(source.capacity_density(), total_flow / total_area);

  for (int cy = 0; cy < field->ny(); ++cy) {
    for (int cx = 0; cx < field->nx(); ++cx) {
      EXPECT_EQ(source.usage(cx, cy), field->value_at(cx, cy));
      EXPECT_EQ(source.density(cx, cy), field->density(cx, cy));
      EXPECT_EQ(source.capacity(cx, cy),
                source.capacity_density() * field->cell_rect(cx, cy).area());
      const double over = source.usage(cx, cy) - source.capacity(cx, cy);
      EXPECT_EQ(source.overflow(cx, cy), over > 0.0 ? over : 0.0);
    }
  }
}

TEST(HeatMapFeatures, CsvGoldenOnHandBuiltMap) {
  // 2x2 uniform grid over a 20x20 chip, one known value per cell, one
  // diagonal net crossing everything: every emitted number is checkable
  // by hand. Capacity density = total flow / chip area = 10 / 400.
  CongestionMap map(GridSpec::from_counts(Rect{0.0, 0.0, 20.0, 20.0}, 2, 2));
  map.add(0, 0, 1.0);
  map.add(1, 0, 2.0);
  map.add(0, 1, 3.0);
  map.add(1, 1, 4.0);
  const std::vector<TwoPinNet> nets = {
      TwoPinNet{{1.0, 1.0}, {19.0, 19.0}, 0},   // crosses all four cells
      TwoPinNet{{1.0, 1.0}, {9.0, 9.0}, 1},     // bottom-left only
  };
  HeatMapSource source(map, "fixed_grid");
  source.set_nets(nets);

  EXPECT_EQ(source.crossing_nets(0, 0), 2);
  EXPECT_EQ(source.crossing_nets(1, 0), 1);
  EXPECT_EQ(source.crossing_nets(0, 1), 1);
  EXPECT_EQ(source.crossing_nets(1, 1), 1);

  std::ostringstream csv;
  source.write_features_csv(csv);
  const std::string expected =
      "cx,cy,xlo,ylo,xhi,yhi,capacity,usage,density,crossing_nets,"
      "overflow\n"
      "0,0,0,0,10,10,2.5,1,0.01,2,0\n"
      "1,0,10,0,20,10,2.5,2,0.02,1,0\n"
      "0,1,0,10,10,20,2.5,3,0.029999999999999999,1,0.5\n"
      "1,1,10,10,20,20,2.5,4,0.040000000000000001,1,1.5\n";
  EXPECT_EQ(csv.str(), expected);
}

TEST(HeatMapFeatures, JsonlRowsParseAndCarryEveryField) {
  CongestionMap map(GridSpec::from_counts(Rect{0.0, 0.0, 20.0, 20.0}, 2, 2));
  map.add(0, 0, 1.0);
  map.add(1, 1, 4.0);
  HeatMapSource source(map, "fixed_grid");

  std::ostringstream jsonl;
  source.write_features_jsonl(jsonl);
  std::istringstream in(jsonl.str());
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    std::string error;
    const auto v = obs::parse_json(line, &error);
    ASSERT_TRUE(v.has_value()) << line << ": " << error;
    ASSERT_TRUE(v->is_object());
    EXPECT_EQ(v->find("source")->string, "fixed_grid");
    for (const char* key : {"cx", "cy", "xlo", "ylo", "xhi", "yhi",
                            "capacity", "usage", "density", "crossing_nets",
                            "overflow"}) {
      const obs::JsonValue* member = v->find(key);
      ASSERT_NE(member, nullptr) << key << " missing in " << line;
      EXPECT_TRUE(member->is_number()) << key;
    }
    ++rows;
  }
  EXPECT_EQ(rows, 4);

  // %.17g round trip: the JSONL value equals the in-memory double bitwise.
  std::istringstream again(jsonl.str());
  std::getline(again, line);
  const auto first = obs::parse_json(line);
  EXPECT_EQ(first->find("usage")->number, map.at(0, 0));
  EXPECT_EQ(first->find("density")->number, map.density(0, 0));
}

TEST(HeatMapFeatures, DegenerateNetOnCutLineCrossesBothNeighbours) {
  // A vertical net exactly on the x = 10 cut: closed routing ranges touch
  // both columns, so both cells count it — mirrors the models' closed
  // span treatment.
  CongestionMap map(GridSpec::from_counts(Rect{0.0, 0.0, 20.0, 20.0}, 2, 1));
  const std::vector<TwoPinNet> nets = {TwoPinNet{{10.0, 2.0}, {10.0, 8.0}, 0}};
  HeatMapSource source(map, "fixed_grid");
  source.set_nets(nets);
  EXPECT_EQ(source.crossing_nets(0, 0), 1);
  EXPECT_EQ(source.crossing_nets(1, 0), 1);
}

TEST(HeatMapOptionsTest, LegendAndTooltipsAreOptional) {
  CongestionMap map(GridSpec::from_counts(Rect{0.0, 0.0, 20.0, 20.0}, 2, 2));
  map.add(0, 0, 1.0);
  HeatMapSource source(map, "fixed_grid");

  HeatMapOptions bare;
  bare.draw_legend = false;
  bare.draw_tooltips = false;
  bare.title = "bare";
  std::ostringstream svg;
  source.write_svg(svg, bare);
  EXPECT_EQ(svg.str().find("linearGradient"), std::string::npos);
  EXPECT_EQ(svg.str().find("<title>cell"), std::string::npos);
  EXPECT_NE(svg.str().find("bare"), std::string::npos);

  std::ostringstream full;
  source.write_svg(full);
  EXPECT_NE(full.str().find("linearGradient"), std::string::npos);
  EXPECT_NE(full.str().find("<title>cell"), std::string::npos);
}

}  // namespace
}  // namespace ficon
