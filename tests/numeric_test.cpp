// Tests for the numeric kernel: factorial/binomial tables, Simpson
// integration, and the normal-distribution helpers.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "numeric/factorial.hpp"
#include "numeric/normal.hpp"
#include "numeric/simpson.hpp"

namespace ficon {
namespace {

TEST(LogFactorial, SmallValuesExact) {
  LogFactorialTable table;
  EXPECT_DOUBLE_EQ(table.log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(table.log_factorial(1), 0.0);
  EXPECT_NEAR(table.log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(table.log_factorial(10), std::log(3628800.0), 1e-12);
}

TEST(LogFactorial, GrowsOnDemand) {
  LogFactorialTable table;
  const std::size_t initial = table.cached_size();
  table.log_factorial(100);
  EXPECT_GE(table.cached_size(), 101u);
  EXPECT_GE(table.cached_size(), initial);
  // Stirling sanity: ln(100!) ~ 363.739.
  EXPECT_NEAR(table.log_factorial(100), 363.73937555556347, 1e-9);
}

TEST(LogFactorial, RejectsNegative) {
  LogFactorialTable table;
  EXPECT_THROW(table.log_factorial(-1), std::invalid_argument);
  EXPECT_THROW(table.log_choose(3, 4), std::invalid_argument);
  EXPECT_THROW(table.log_choose(3, -1), std::invalid_argument);
}

TEST(LogChoose, MatchesExactBinomials) {
  LogFactorialTable table;
  for (int n = 0; n <= 40; ++n) {
    for (int k = 0; k <= n; ++k) {
      const double expected = static_cast<double>(choose_exact(n, k));
      EXPECT_NEAR(std::exp(table.log_choose(n, k)), expected,
                  expected * 1e-10)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogChoose, PascalRecurrence) {
  LogFactorialTable table;
  for (int n = 2; n <= 200; n += 7) {
    for (int k = 1; k < n; k += 3) {
      const double lhs = std::exp(table.log_choose(n, k));
      const double rhs = std::exp(table.log_choose(n - 1, k)) +
                         std::exp(table.log_choose(n - 1, k - 1));
      EXPECT_NEAR(lhs, rhs, rhs * 1e-9) << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogPaths, CountsLatticePaths) {
  LogFactorialTable table;
  // 2x2 step grid: C(4,2) = 6 monotone paths.
  EXPECT_NEAR(std::exp(table.log_paths(2, 2)), 6.0, 1e-9);
  // Degenerate directions: a single path.
  EXPECT_NEAR(std::exp(table.log_paths(0, 5)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(table.log_paths(7, 0)), 1.0, 1e-12);
}

TEST(ChooseExact, KnownValues) {
  EXPECT_EQ(choose_exact(0, 0), 1u);
  EXPECT_EQ(choose_exact(10, 5), 252u);
  EXPECT_EQ(choose_exact(52, 5), 2598960u);
  EXPECT_EQ(choose_exact(62, 31), 465428353255261088ull);
}

TEST(ChooseExact, SymmetricInK) {
  for (int n = 0; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(choose_exact(n, k), choose_exact(n, n - k));
    }
  }
}

TEST(ChooseDouble, TracksExact) {
  for (int n = 0; n <= 50; ++n) {
    for (int k = 0; k <= n; k += 2) {
      const double expected = static_cast<double>(choose_exact(n, k));
      EXPECT_NEAR(choose_double(n, k), expected, expected * 1e-10);
    }
  }
}

TEST(Simpson, ExactForCubics) {
  // Simpson's rule integrates polynomials of degree <= 3 exactly.
  const auto cubic = [](double x) { return 2.0 * x * x * x - x * x + 3.0; };
  const double exact = 2.0 * 16.0 / 4.0 - 8.0 / 3.0 + 3.0 * 2.0;  // over [0,2]
  EXPECT_NEAR(simpson(cubic, 0.0, 2.0, 2), exact, 1e-12);
  EXPECT_NEAR(simpson(cubic, 0.0, 2.0, 64), exact, 1e-12);
}

TEST(Simpson, ConvergesOnGaussian) {
  const auto gauss = [](double x) { return std_normal_pdf(x); };
  EXPECT_NEAR(simpson(gauss, -6.0, 6.0, 64), 1.0, 1e-8);
}

TEST(Simpson, EmptyAndInvertedIntervals) {
  const auto f = [](double) { return 1.0; };
  EXPECT_EQ(simpson(f, 1.0, 1.0, 4), 0.0);
  EXPECT_EQ(simpson(f, 2.0, 1.0, 4), 0.0);
}

TEST(Simpson, RejectsOddPanels) {
  const auto f = [](double) { return 1.0; };
  EXPECT_THROW(simpson(f, 0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(simpson(f, 0.0, 1.0, 0), std::invalid_argument);
}

TEST(Normal, PdfPeakAndSymmetry) {
  EXPECT_NEAR(std_normal_pdf(0.0), 1.0 / std::sqrt(2.0 * std::numbers::pi),
              1e-15);
  EXPECT_DOUBLE_EQ(std_normal_pdf(1.5), std_normal_pdf(-1.5));
  EXPECT_NEAR(normal_pdf(3.0, 3.0, 2.0), std_normal_pdf(0.0) / 2.0, 1e-15);
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(std_normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(std_normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(std_normal_cdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(5.0, 3.0, 2.0), std_normal_cdf(1.0), 1e-12);
}

TEST(Normal, PdfIsDerivativeOfCdf) {
  for (double z = -3.0; z <= 3.0; z += 0.25) {
    const double h = 1e-6;
    const double numeric =
        (std_normal_cdf(z + h) - std_normal_cdf(z - h)) / (2.0 * h);
    EXPECT_NEAR(numeric, std_normal_pdf(z), 1e-6) << "z=" << z;
  }
}

}  // namespace
}  // namespace ficon
