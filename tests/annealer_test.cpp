// Generic simulated-annealing engine tests.
#include <cmath>

#include <gtest/gtest.h>

#include "anneal/annealer.hpp"

namespace ficon {
namespace {

/// Toy problem: minimize (x - 7)^2 over integers via +-1 moves.
Annealer<int> quadratic_annealer(AnnealOptions opts = {}) {
  return Annealer<int>(
      [](const int& x) { return static_cast<double>((x - 7) * (x - 7)); },
      [](const int& x, Rng& rng) { return rng.chance(0.5) ? x + 1 : x - 1; },
      opts);
}

TEST(Annealer, SolvesToyProblem) {
  AnnealOptions opts;
  opts.moves_per_temperature = 50;
  auto annealer = quadratic_annealer(opts);
  Rng rng(1);
  const auto result = annealer.run(100, rng);
  EXPECT_EQ(result.best, 7);
  EXPECT_EQ(result.best_cost, 0.0);
  EXPECT_GT(result.stats.temperature_steps, 0);
  EXPECT_GT(result.stats.moves_accepted, 0);
  EXPECT_GE(result.stats.moves_proposed, result.stats.moves_accepted);
}

TEST(Annealer, DeterministicPerSeed) {
  auto a = quadratic_annealer();
  auto b = quadratic_annealer();
  Rng r1(42), r2(42);
  const auto ra = a.run(50, r1);
  const auto rb = b.run(50, r2);
  EXPECT_EQ(ra.best, rb.best);
  EXPECT_EQ(ra.stats.moves_proposed, rb.stats.moves_proposed);
  EXPECT_EQ(ra.stats.moves_accepted, rb.stats.moves_accepted);
  EXPECT_DOUBLE_EQ(ra.stats.initial_temperature,
                   rb.stats.initial_temperature);
}

TEST(Annealer, SnapshotCalledOncePerTemperature) {
  AnnealOptions opts;
  opts.moves_per_temperature = 10;
  auto annealer = quadratic_annealer(opts);
  Rng rng(3);
  int calls = 0;
  int last_step = -1;
  double last_temp = 1e300;
  const auto result = annealer.run(
      40, rng, [&](int step, double temp, const int&, double) {
        EXPECT_EQ(step, last_step + 1);  // consecutive steps
        EXPECT_LT(temp, last_temp);      // strictly cooling
        last_step = step;
        last_temp = temp;
        ++calls;
      });
  EXPECT_EQ(calls, result.stats.temperature_steps);
}

TEST(Annealer, InitialTemperatureAcceptsUphill) {
  // At T0 a typical uphill move should be accepted with probability near
  // initial_accept: verify T0 is calibrated to the cost scale (uphill moves
  // on the toy problem near x=100 cost ~200).
  AnnealOptions opts;
  opts.initial_accept = 0.9;
  auto annealer = quadratic_annealer(opts);
  Rng rng(4);
  const auto result = annealer.run(100, rng);
  EXPECT_GT(result.stats.initial_temperature, 100.0);
  EXPECT_LT(result.stats.final_temperature,
            result.stats.initial_temperature);
}

TEST(Annealer, StallTerminationStopsEarly) {
  AnnealOptions opts;
  opts.moves_per_temperature = 20;
  opts.max_stall_temperatures = 2;
  opts.stop_temperature_ratio = 1e-30;  // would run ~forever without stall
  auto annealer = quadratic_annealer(opts);
  Rng rng(5);
  const auto result = annealer.run(9, rng);
  EXPECT_EQ(result.best, 7);
  // With ratio 1e-30 and cooling 0.9, temperature termination would need
  // ~650 steps; stalling must cut it far shorter.
  EXPECT_LT(result.stats.temperature_steps, 200);
}

TEST(Annealer, StallResetsWhileDescendingFromExcursion) {
  // Pins the documented stall rule: a temperature that improves
  // current_cost — even without touching the global best — does NOT count
  // toward the stall limit. Landscape (deterministic +1 moves): the walk
  // hits the global best at x=1 (cost 1), climbs to x=2 (cost 90,
  // accepted while hot), then descends one unit per temperature down a
  // long ramp that never beats the best, and finally flattens out.
  // Counting only best-cost improvements would stop max_stall
  // temperatures after x=1 (~10 steps); counting current-cost progress
  // rides the whole ~58-temperature ramp and stalls only on the plateau.
  const auto cost = [](const int& x) {
    if (x <= 0) return 100.0;
    if (x == 1) return 1.0;
    if (x <= 60) return 90.0 - (x - 2);
    return 32.0;
  };
  AnnealOptions opts;
  opts.moves_per_temperature = 1;
  opts.max_stall_temperatures = 8;
  Annealer<int> annealer(
      cost, [](const int& x, Rng&) { return x + 1; }, opts);
  Rng rng(7);
  const auto result = annealer.run(0, rng);
  EXPECT_EQ(result.best, 1);
  EXPECT_DOUBLE_EQ(result.best_cost, 1.0);
  EXPECT_GT(result.stats.temperature_steps, 40);  // rode the ramp down
  EXPECT_LT(result.stats.temperature_steps, 85);  // stalled on the plateau
}

TEST(Annealer, GreedyAtLowTemperature) {
  // With aggressive cooling the end phase is effectively greedy: from any
  // start the result is a local (here global) optimum.
  AnnealOptions opts;
  opts.cooling = 0.5;
  opts.moves_per_temperature = 100;
  auto annealer = quadratic_annealer(opts);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    EXPECT_EQ(annealer.run(-50, rng).best, 7) << "seed " << seed;
  }
}

TEST(Annealer, RejectsBadOptions) {
  AnnealOptions bad;
  bad.cooling = 1.5;
  EXPECT_THROW(quadratic_annealer(bad), std::invalid_argument);
  AnnealOptions bad2;
  bad2.moves_per_temperature = 0;
  EXPECT_THROW(quadratic_annealer(bad2), std::invalid_argument);
  AnnealOptions bad3;
  bad3.initial_accept = 1.0;
  EXPECT_THROW(quadratic_annealer(bad3), std::invalid_argument);
}

TEST(Annealer, HandlesFlatCostSurface) {
  // No uphill moves ever: T0 falls back to the heuristic and the run
  // terminates normally.
  Annealer<int> flat([](const int&) { return 1.0; },
                     [](const int& x, Rng&) { return x + 1; },
                     AnnealOptions{});
  Rng rng(6);
  const auto result = flat.run(0, rng);
  EXPECT_EQ(result.best_cost, 1.0);
  EXPECT_GT(result.stats.initial_temperature, 0.0);
}

}  // namespace
}  // namespace ficon
