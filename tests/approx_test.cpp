// Theorem 1 validation: the normal approximation of Formula 3 and the
// precision rules of section 4.5.
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "congestion/approx.hpp"
#include "numeric/factorial.hpp"

namespace ficon {
namespace {

class ApproxFixture : public ::testing::Test {
 protected:
  LogFactorialTable table_;
  PathProbability exact_{table_};
  ApproxRegionProbability approx_{exact_};
};

TEST_F(ApproxFixture, OptionsValidationRejectsBadSimpsonPanels) {
  // Simpson's composite rule needs an even panel count of at least 2;
  // anything else must fail loudly at construction, not integrate garbage.
  for (const int panels : {-4, -1, 0, 1, 3, 15}) {
    ApproxOptions o;
    o.simpson_panels = panels;
    EXPECT_THROW(ApproxRegionProbability(exact_, o), std::invalid_argument)
        << "panels=" << panels;
  }
  for (const int panels : {2, 4, 16, 64}) {
    ApproxOptions o;
    o.simpson_panels = panels;
    EXPECT_NO_THROW(ApproxRegionProbability(exact_, o)) << "panels=" << panels;
  }
}

TEST_F(ApproxFixture, OptionsValidationRejectsNegativeThresholds) {
  {
    ApproxOptions o;
    o.small_range_threshold = -1;
    EXPECT_THROW(ApproxRegionProbability(exact_, o), std::invalid_argument);
  }
  {
    ApproxOptions o;
    o.small_region_threshold = -3;
    EXPECT_THROW(ApproxRegionProbability(exact_, o), std::invalid_argument);
  }
  {
    ApproxOptions o;
    o.narrow_range_threshold = -2;
    EXPECT_THROW(ApproxRegionProbability(exact_, o), std::invalid_argument);
  }
  // Zero thresholds are legal: they just disable the exact-fallback bands.
  ApproxOptions zeros;
  zeros.small_range_threshold = 0;
  zeros.small_region_threshold = 0;
  zeros.narrow_range_threshold = 0;
  EXPECT_NO_THROW(ApproxRegionProbability(exact_, zeros));
}

TEST_F(ApproxFixture, ErrorCellsAreExactlyThePaperList) {
  // Section 4.5: for a type I net, Function (1)'s mu ratio leaves (0,1)
  // exactly at cells (0,0), (g1-2,g2-1), (g1-1,g2-2) and (g1-1,g2-1) of the
  // routing range — the gray cells of Figure 7. Probe the top-exit term at
  // every (x, y2) pair and check invalidity occurs exactly where predicted.
  const int g1 = 9, g2 = 7;
  for (int y2 = 0; y2 < g2; ++y2) {
    for (int x = 0; x < g1; ++x) {
      const bool invalid =
          !approx_.top_exit_term_approx(g1, g2, static_cast<double>(x), y2)
               .has_value();
      const bool predicted = (x == 0 && y2 == 0) ||
                             (x == g1 - 2 && y2 == g2 - 1) ||
                             (x == g1 - 1 && y2 == g2 - 2) ||
                             (x == g1 - 1 && y2 == g2 - 1);
      EXPECT_EQ(invalid, predicted) << "x=" << x << " y2=" << y2;
    }
  }
}

TEST_F(ApproxFixture, Figure8CurveDeviationBelowPointZeroFive) {
  // Paper, Figure 8: 31x21 type I net, IR-grid top edge at y2 = 15,
  // x = 10..20 — approximation "extremely accurate"; and generally the
  // deviation of the term values stays below 0.05.
  const int g1 = 31, g2 = 21, y2 = 15;
  for (int x = 10; x <= 20; ++x) {
    const double exact = approx_.top_exit_term_exact(g1, g2, x, y2);
    const auto approx =
        approx_.top_exit_term_approx(g1, g2, static_cast<double>(x), y2);
    ASSERT_TRUE(approx.has_value()) << "x=" << x;
    EXPECT_NEAR(*approx, exact, 0.05) << "x=" << x;
  }
}

TEST_F(ApproxFixture, TermDeviationBoundAwayFromPins) {
  // The paper claims deviation "generally less than 0.05" for the term
  // curves. The only weak zone of the transformation is the immediate
  // neighbourhood of the two pins (which the algorithm's probability-1 pin
  // rule removes from play); everywhere else the 0.05 bound must hold.
  // Balanced shapes only: on strongly skewed ranges (e.g. 6x40) the
  // x-direction term has too little support for the normal chain and the
  // policy routes those ranges to exact Formula 3 instead (tested below).
  for (const auto& [g1, g2] : std::vector<std::pair<int, int>>{
           {31, 21}, {12, 12}, {25, 13}, {13, 25}, {40, 40}}) {
    for (int y2 = 0; y2 < g2 - 1; ++y2) {
      for (int x = 0; x < g1; ++x) {
        const int source_dist = x + y2;
        const int sink_dist = (g1 - 1 - x) + (g2 - 1 - y2);
        if (source_dist <= 3 || sink_dist <= 3) continue;  // pin zone
        const auto approx =
            approx_.top_exit_term_approx(g1, g2, static_cast<double>(x), y2);
        ASSERT_TRUE(approx.has_value())
            << "g=(" << g1 << ',' << g2 << ") x=" << x << " y2=" << y2;
        const double exact = approx_.top_exit_term_exact(g1, g2, x, y2);
        EXPECT_NEAR(*approx, exact, 0.05)
            << "g=(" << g1 << ',' << g2 << ") x=" << x << " y2=" << y2;
      }
    }
  }
}

TEST_F(ApproxFixture, NarrowRangesRouteToExactFormula) {
  // min(g1,g2) below the narrow-range threshold: the policy must agree with
  // Formula 3 to machine precision on every region (away from pins).
  for (const auto& [g1, g2] :
       std::vector<std::pair<int, int>>{{8, 25}, {6, 40}, {40, 6}, {11, 11}}) {
    const NetGridShape s{g1, g2, false};
    for (int x1 = 0; x1 < g1; x1 += 2) {
      for (int y1 = 0; y1 < g2; y1 += 3) {
        const GridRect r{x1, y1, std::min(x1 + 3, g1 - 1),
                         std::min(y1 + 5, g2 - 1)};
        const double expected = exact_.region_covers_pin(s, r)
                                    ? 1.0
                                    : exact_.region_probability_exact(s, r);
        EXPECT_NEAR(approx_.region_probability(s, r), expected, 1e-12)
            << "g=(" << g1 << ',' << g2 << ") region " << r;
      }
    }
  }
}

TEST_F(ApproxFixture, WorstCaseRegionErrorBounded) {
  // Exhaustive policy-vs-exact sweep on a balanced range: the end-to-end
  // error of any single IR-grid stays within ~0.055.
  const int g1 = 31, g2 = 21;
  const NetGridShape s{g1, g2, false};
  double worst = 0.0;
  for (int x1 = 0; x1 < g1; ++x1) {
    for (int x2 = x1; x2 < g1; x2 += 2) {
      for (int y1 = 0; y1 < g2; ++y1) {
        for (int y2 = y1; y2 < g2; y2 += 2) {
          const GridRect r{x1, y1, x2, y2};
          const double expected = exact_.region_covers_pin(s, r)
                                      ? 1.0
                                      : exact_.region_probability_exact(s, r);
          worst = std::max(worst,
                           std::abs(approx_.region_probability(s, r) - expected));
        }
      }
    }
  }
  EXPECT_LE(worst, 0.055);
}

TEST_F(ApproxFixture, RightTermMirrorsTopTermOnSquareRanges) {
  // On a square range the two exit directions are symmetric.
  const int g = 17;
  for (int c = 2; c < g - 2; ++c) {
    for (int v = 0; v < g - 1; ++v) {
      const auto top = approx_.top_exit_term_approx(g, g, v, c);
      const auto right = approx_.right_exit_term_approx(g, g, c, v);
      ASSERT_EQ(top.has_value(), right.has_value());
      if (top) {
        EXPECT_NEAR(*top, *right, 1e-12);
      }
      EXPECT_NEAR(approx_.top_exit_term_exact(g, g, v, c),
                  approx_.right_exit_term_exact(g, g, c, v), 1e-12);
    }
  }
}

TEST_F(ApproxFixture, Theorem1TracksExactOnInteriorRegions) {
  const int g1 = 31, g2 = 21;
  const NetGridShape s{g1, g2, false};
  for (const GridRect r : {GridRect{10, 8, 20, 15}, GridRect{5, 5, 8, 9},
                           GridRect{14, 2, 25, 6}, GridRect{2, 10, 28, 18},
                           GridRect{12, 12, 12, 12}}) {
    const auto approx = approx_.theorem1(g1, g2, r);
    ASSERT_TRUE(approx.has_value()) << r;
    const double exact = exact_.region_probability_exact(s, r);
    EXPECT_NEAR(*approx, exact, 0.05) << r;
  }
}

TEST_F(ApproxFixture, RegionProbabilityPolicyPinsGetOne) {
  const NetGridShape t1{20, 16, false};
  EXPECT_EQ(approx_.region_probability(t1, GridRect{0, 0, 2, 2}), 1.0);
  EXPECT_EQ(approx_.region_probability(t1, GridRect{18, 14, 19, 15}), 1.0);
  const NetGridShape t2{20, 16, true};
  EXPECT_EQ(approx_.region_probability(t2, GridRect{0, 13, 2, 15}), 1.0);
  EXPECT_EQ(approx_.region_probability(t2, GridRect{17, 0, 19, 3}), 1.0);
}

TEST_F(ApproxFixture, RegionProbabilityPolicyMatchesExactBroadly) {
  // End-to-end policy accuracy across a sweep of interior regions and both
  // net types: within a few percent of the exact Formula 3 value.
  for (const bool type2 : {false, true}) {
    const NetGridShape s{26, 19, type2};
    for (int x1 = 1; x1 < 24; x1 += 4) {
      for (int y1 = 1; y1 < 17; y1 += 3) {
        for (int w = 1; w <= 9; w += 4) {
          for (int h = 1; h <= 7; h += 3) {
            const GridRect r{x1, y1, std::min(x1 + w, 24), std::min(y1 + h, 17)};
            const double policy = approx_.region_probability(s, r);
            const double exact = exact_.region_probability_exact(s, r);
            EXPECT_NEAR(policy, exact, 0.06)
                << "type2=" << type2 << " region " << r;
          }
        }
      }
    }
  }
}

TEST_F(ApproxFixture, SmallRangesFallBackToExact) {
  // Below the small-range threshold the policy must equal Formula 3 to
  // machine precision.
  for (const bool type2 : {false, true}) {
    for (int g1 = 2; g1 <= 4; ++g1) {
      for (int g2 = 2; g2 <= 3; ++g2) {
        const NetGridShape s{g1, g2, type2};
        for (int x = 0; x < g1; ++x) {
          for (int y = 0; y < g2; ++y) {
            const GridRect r{x, y, x, y};
            EXPECT_NEAR(approx_.region_probability(s, r),
                        exact_.region_covers_pin(s, r)
                            ? 1.0
                            : exact_.region_probability_exact(s, r),
                        1e-12)
                << "g=(" << g1 << ',' << g2 << ") cell=(" << x << ',' << y
                << ")";
          }
        }
      }
    }
  }
}

TEST_F(ApproxFixture, DegenerateRangesAreCertain) {
  EXPECT_EQ(approx_.region_probability(NetGridShape{1, 1, false},
                                       GridRect{0, 0, 0, 0}),
            1.0);
  EXPECT_EQ(approx_.region_probability(NetGridShape{9, 1, false},
                                       GridRect{3, 0, 5, 0}),
            1.0);
  EXPECT_EQ(approx_.region_probability(NetGridShape{1, 7, false},
                                       GridRect{0, 2, 0, 2}),
            1.0);
}

TEST_F(ApproxFixture, DisjointRegionsAreZero) {
  EXPECT_EQ(approx_.region_probability(NetGridShape{10, 10, false},
                                       GridRect{12, 0, 14, 3}),
            0.0);
}

TEST_F(ApproxFixture, ContinuityCorrectionImprovesAccuracy) {
  // The +-1/2 continuity correction should (on aggregate) track the exact
  // sums better than integrating over the paper's literal [x1, x2].
  ApproxOptions literal;
  literal.continuity_correction = false;
  const ApproxRegionProbability approx_literal(exact_, literal);

  const int g1 = 31, g2 = 21;
  const NetGridShape s{g1, g2, false};
  double err_corrected = 0.0;
  double err_literal = 0.0;
  int count = 0;
  for (int x1 = 2; x1 < 26; x1 += 3) {
    for (int y1 = 2; y1 < 16; y1 += 3) {
      const GridRect r{x1, y1, std::min(x1 + 5, g1 - 2),
                       std::min(y1 + 4, g2 - 2)};
      const double exact = exact_.region_probability_exact(s, r);
      const auto c = approx_.theorem1(g1, g2, r);
      const auto l = approx_literal.theorem1(g1, g2, r);
      ASSERT_TRUE(c && l);
      err_corrected += std::abs(*c - exact);
      err_literal += std::abs(*l - exact);
      ++count;
    }
  }
  ASSERT_GT(count, 10);
  EXPECT_LT(err_corrected, err_literal);
}

TEST_F(ApproxFixture, ZeroWidthSpansKeepTheirExitMass) {
  // Regression: with continuity correction off, Simpson over the literal
  // [x1, x2] returns 0 for a width-0 span, so a region one fine column
  // (row) wide lost its whole top (right) exit sum — a single-cell region
  // scored exactly 0 from Theorem 1 while Formula 3 gives up to ~0.23
  // here. Width-0 spans must force the +-1/2 widening (the unit-width
  // integral is the continuity-corrected one-term sum).
  ApproxOptions literal;
  literal.continuity_correction = false;
  const ApproxRegionProbability approx_literal(exact_, literal);
  const int g1 = 31, g2 = 21;
  const NetGridShape s{g1, g2, false};
  double largest_exact = 0.0;
  for (int x = 10; x <= 20; x += 2) {
    for (int y = 8; y <= 14; y += 2) {
      const GridRect r{x, y, x, y};
      const auto th = approx_literal.theorem1(g1, g2, r);
      ASSERT_TRUE(th.has_value()) << r;
      const double exact = exact_.region_probability_exact(s, r);
      largest_exact = std::max(largest_exact, exact);
      EXPECT_NEAR(*th, exact, 0.02) << r;
    }
  }
  // Make sure the sweep actually contains cells with substantial mass —
  // otherwise the NEAR assertions above would pass vacuously.
  EXPECT_GT(largest_exact, 0.1);
}

TEST_F(ApproxFixture, OutOfRangeRegionsMatchClampedRegions) {
  // region_probability clamps the region to the routing range before
  // scoring; a region poking past the range must behave exactly like its
  // clamped counterpart on every internal path (pin rule, small/narrow
  // exact fallbacks, Theorem 1 and its exact fallback).
  for (const bool type2 : {false, true}) {
    for (const auto& [g1, g2] :
         std::vector<std::pair<int, int>>{{26, 19}, {8, 25}, {3, 3}}) {
      const NetGridShape s{g1, g2, type2};
      for (const GridRect raw :
           {GridRect{-3, -2, 4, 5}, GridRect{g1 - 5, g2 - 4, g1 + 6, g2 + 9},
            GridRect{2, -7, g1 + 1, 4}, GridRect{-1, 3, g1 + 2, g2 - 3}}) {
        const GridRect clamped{std::max(raw.xlo, 0), std::max(raw.ylo, 0),
                               std::min(raw.xhi, g1 - 1),
                               std::min(raw.yhi, g2 - 1)};
        EXPECT_EQ(approx_.region_probability(s, raw),
                  approx_.region_probability(s, clamped))
            << "type2=" << type2 << " g=(" << g1 << ',' << g2 << ") raw "
            << raw;
      }
    }
  }
}

TEST_F(ApproxFixture, ProbabilitiesStayInUnitInterval) {
  for (const bool type2 : {false, true}) {
    const NetGridShape s{33, 27, type2};
    for (int x1 = 0; x1 < 33; x1 += 5) {
      for (int y1 = 0; y1 < 27; y1 += 5) {
        const GridRect r{x1, y1, std::min(x1 + 6, 32), std::min(y1 + 6, 26)};
        const double p = approx_.region_probability(s, r);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace ficon
