// Tests for the scalable synthetic benchmark generator (src/gen/scale.hpp):
// tier spec arithmetic, structural invariants of the generated netlists,
// and the determinism contract — same (spec, seed) means byte-identical
// netlists regardless of the thread-pool configuration.
#include <stdexcept>

#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "gen/scale.hpp"
#include "util/thread_pool.hpp"

namespace ficon {
namespace {

TEST(ScaleTierSpec, Ami49TierMatchesPublishedStatsPerTile) {
  const ScaleTierSpec one = ami49x_spec(1);
  EXPECT_EQ(one.name, "ami49x1");
  EXPECT_EQ(one.modules, 49);
  EXPECT_EQ(one.nets, 408);
  EXPECT_EQ(one.pins, 953);
  EXPECT_EQ(one.terminals, 22);
  EXPECT_DOUBLE_EQ(one.total_area_um2, 35445424.0);
  EXPECT_FALSE(one.soft);

  const ScaleTierSpec four = ami49x_spec(4);
  EXPECT_EQ(four.modules, 4 * 49);
  EXPECT_EQ(four.nets, 4 * 408);
  EXPECT_DOUBLE_EQ(four.total_area_um2, 4 * 35445424.0);
  // Pads ring the outline: count grows ~sqrt(copies), not linearly.
  EXPECT_EQ(four.terminals, 44);
}

TEST(ScaleTierSpec, GsrcStyleHitsTheN100Anchor) {
  const ScaleTierSpec spec = gsrc_style_spec(100);
  EXPECT_EQ(spec.name, "n100");
  EXPECT_EQ(spec.modules, 100);
  EXPECT_EQ(spec.nets, 885);
  EXPECT_TRUE(spec.soft);
  // The generator needs >= 2 pins per plain net; the published pin count
  // is below that floor, so the spec raises it.
  EXPECT_GE(spec.pins, 2 * spec.nets);
  EXPECT_LE(spec.terminals, spec.nets);
}

TEST(ScaleTierSpec, ParseAcceptsAllThreeTokenForms) {
  EXPECT_EQ(parse_scale_tier("n300").name, "n300");
  EXPECT_EQ(parse_scale_tier("ami49x20").modules, 20 * 49);
  // A bare module count maps to the smallest covering ami49x rung.
  const ScaleTierSpec bare = parse_scale_tier("500");
  EXPECT_EQ(bare.name, "ami49x11");
  EXPECT_GE(bare.modules, 500);
  EXPECT_THROW(parse_scale_tier("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_scale_tier("n"), std::invalid_argument);
  EXPECT_THROW(parse_scale_tier("ami49x"), std::invalid_argument);
}

TEST(MakeScaleNetlist, AggregateCountsMatchTheSpecExactly) {
  const ScaleTierSpec spec = ami49x_spec(2);
  // Construction runs Netlist::validate(), so structural invariants
  // (degree >= 2, at least one module pin per net, offsets in range) are
  // covered by the constructor not throwing.
  const Netlist netlist = make_scale_netlist(spec);
  EXPECT_EQ(static_cast<int>(netlist.module_count()), spec.modules);
  EXPECT_EQ(static_cast<int>(netlist.net_count()), spec.nets);
  EXPECT_EQ(static_cast<int>(netlist.terminal_count()), spec.terminals);
  EXPECT_EQ(static_cast<int>(netlist.pin_count()), spec.pins);
  // Areas are renormalized to the target total (rounding to whole um
  // perturbs each module, so allow a few percent in aggregate).
  EXPECT_NEAR(netlist.total_module_area() / spec.total_area_um2, 1.0, 0.05);
}

TEST(MakeScaleNetlist, SoftTiersProduceSoftModules) {
  const Netlist netlist = make_scale_netlist(gsrc_style_spec(60));
  for (const Module& m : netlist.modules()) {
    EXPECT_TRUE(m.soft);
    EXPECT_DOUBLE_EQ(m.min_aspect, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(m.max_aspect, 3.0);
  }
}

TEST(MakeScaleNetlist, FingerprintIsDeterministicAcrossThreadCounts) {
  const ScaleTierSpec spec = ami49x_spec(3);
  ThreadPool::set_global_threads(1);
  const std::uint64_t single = netlist_fingerprint(make_scale_netlist(spec));
  ThreadPool::set_global_threads(8);
  const std::uint64_t eight = netlist_fingerprint(make_scale_netlist(spec));
  ThreadPool::set_global_threads(ThreadPool::env_threads());
  EXPECT_EQ(single, eight);
  // Repeatable within one configuration too.
  EXPECT_EQ(netlist_fingerprint(make_scale_netlist(spec)), single);
}

TEST(MakeScaleNetlist, SeedAndSpecChangeTheFingerprint) {
  const ScaleTierSpec spec = ami49x_spec(2);
  const std::uint64_t base = netlist_fingerprint(make_scale_netlist(spec, 7));
  EXPECT_NE(netlist_fingerprint(make_scale_netlist(spec, 8)), base);
  EXPECT_NE(netlist_fingerprint(make_scale_netlist(ami49x_spec(3), 7)), base);
}

TEST(NetlistFingerprint, SeesEveryField) {
  const Netlist a = make_mcnc("apte");
  const std::uint64_t base = netlist_fingerprint(a);
  // Same circuit, perturbed module dimension: fingerprint must move.
  std::vector<Module> modules = a.modules();
  modules.front().width += 1.0;
  const Netlist b(a.name(), std::move(modules),
                  a.terminals(), a.nets());
  EXPECT_NE(netlist_fingerprint(b), base);
}

}  // namespace
}  // namespace ficon
