// Tests for the flat SoA netlist view (src/circuit/netlist_soa.hpp) and
// its use inside TwoPinDecomposer: the CSR and occurrence lists must
// mirror the array-of-structs netlist exactly, pin positions must be
// bit-identical to Placement::pin_position(), and the SoA-based caching
// decomposer must reproduce an independently computed decomposition edge
// for edge over an annealing move stream.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/mcnc.hpp"
#include "circuit/netlist_soa.hpp"
#include "floorplan/polish.hpp"
#include "floorplan/slicing.hpp"
#include "gen/scale.hpp"
#include "route/two_pin.hpp"
#include "util/rng.hpp"

namespace ficon {
namespace {

Placement packed_placement(const Netlist& netlist, std::uint64_t seed) {
  Rng rng(seed);
  PolishExpression expr =
      PolishExpression::initial(static_cast<int>(netlist.module_count()));
  expr.random_move(rng);
  return SlicingPacker(netlist).pack(expr).placement;
}

TEST(NetlistSoA, CsrMirrorsTheNetlist) {
  const Netlist netlist = make_mcnc("ami49");
  const NetlistSoA soa(netlist);
  ASSERT_EQ(soa.module_count(), netlist.module_count());
  ASSERT_EQ(soa.net_count(), netlist.net_count());
  ASSERT_EQ(soa.pin_count(), netlist.pin_count());

  for (std::size_t m = 0; m < netlist.module_count(); ++m) {
    EXPECT_EQ(soa.module_widths()[m], netlist.modules()[m].width);
    EXPECT_EQ(soa.module_heights()[m], netlist.modules()[m].height);
  }
  for (std::size_t n = 0; n < netlist.net_count(); ++n) {
    const Net& net = netlist.nets()[n];
    ASSERT_EQ(soa.degree(n), net.pins.size());
    bool has_terminal = false;
    for (std::size_t i = 0; i < net.pins.size(); ++i) {
      const Pin& pin = net.pins[i];
      const std::size_t p = soa.pin_begin(n) + i;
      EXPECT_EQ(soa.pin_module(p), pin.module);
      EXPECT_EQ(soa.pin_terminal(p), pin.terminal);
      EXPECT_EQ(soa.pin_fx(p), pin.fx);
      EXPECT_EQ(soa.pin_fy(p), pin.fy);
      has_terminal = has_terminal || pin.is_terminal();
    }
    EXPECT_EQ(soa.net_has_terminal(n), has_terminal);
  }
}

TEST(NetlistSoA, OccurrenceListsAreDedupedSortedAndComplete) {
  // The synthetic generator produces multi-tile nets and (rarely)
  // repeated modules within a net — both interesting for the dedup.
  const Netlist netlist = make_scale_netlist(ami49x_spec(2));
  const NetlistSoA soa(netlist);

  // Reference: module -> set of incident nets from the AoS netlist.
  std::vector<std::set<std::uint32_t>> expected(netlist.module_count());
  for (std::size_t n = 0; n < netlist.net_count(); ++n) {
    for (const Pin& pin : netlist.nets()[n].pins) {
      if (!pin.is_terminal()) {
        expected[static_cast<std::size_t>(pin.module)].insert(
            static_cast<std::uint32_t>(n));
      }
    }
  }
  for (std::size_t m = 0; m < netlist.module_count(); ++m) {
    const std::span<const std::uint32_t> nets = soa.nets_of_module(m);
    EXPECT_TRUE(std::is_sorted(nets.begin(), nets.end()));
    const std::set<std::uint32_t> actual(nets.begin(), nets.end());
    EXPECT_EQ(actual.size(), nets.size()) << "duplicate in module " << m;
    EXPECT_EQ(actual, expected[m]) << "occurrence mismatch for module " << m;
  }
}

TEST(NetlistSoA, PinPositionsBitIdenticalToPlacement) {
  const Netlist netlist = make_mcnc("ami49");
  const NetlistSoA soa(netlist);
  const Placement placement = packed_placement(netlist, 3);
  for (std::size_t n = 0; n < netlist.net_count(); ++n) {
    const Net& net = netlist.nets()[n];
    for (std::size_t i = 0; i < net.pins.size(); ++i) {
      const Point a = placement.pin_position(net.pins[i]);
      const Point b = soa.pin_position(soa.pin_begin(n) + i, placement);
      EXPECT_EQ(a.x, b.x);
      EXPECT_EQ(a.y, b.y);
    }
  }
}

/// Independent reference decomposition: gather pins through the AoS
/// Placement::pin_position and run the public one-net MST, bypassing the
/// SoA, the pin cache and the dirty tracking entirely.
std::vector<TwoPinNet> reference_edges(const Netlist& netlist,
                                       const Placement& placement) {
  std::vector<TwoPinNet> all;
  std::vector<Point> pins;
  for (std::size_t n = 0; n < netlist.net_count(); ++n) {
    pins.clear();
    for (const Pin& pin : netlist.nets()[n].pins) {
      pins.push_back(placement.pin_position(pin));
    }
    for (const TwoPinNet& e : mst_edges(pins, static_cast<int>(n))) {
      all.push_back(e);
    }
  }
  return all;
}

TEST(TwoPinDecomposer, SoaPathBitIdenticalToReferenceOverMoveStream) {
  const Netlist netlist = make_mcnc("ami49");
  Rng rng(7);
  PolishExpression expr =
      PolishExpression::initial(static_cast<int>(netlist.module_count()));
  SlicingPacker packer(netlist);
  TwoPinDecomposer decomposer;
  for (int move = 0; move < 40; ++move) {
    expr.random_move(rng);
    const Placement placement = packer.pack(expr).placement;
    const std::span<const TwoPinNet> fast =
        decomposer.decompose(netlist, placement);
    const std::vector<TwoPinNet> slow = reference_edges(netlist, placement);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < slow.size(); ++i) {
      EXPECT_EQ(fast[i].a.x, slow[i].a.x) << "move " << move << " edge " << i;
      EXPECT_EQ(fast[i].a.y, slow[i].a.y);
      EXPECT_EQ(fast[i].b.x, slow[i].b.x);
      EXPECT_EQ(fast[i].b.y, slow[i].b.y);
      EXPECT_EQ(fast[i].source_net, slow[i].source_net);
    }
  }
}

TEST(TwoPinDecomposer, ExposesTheBoundSoaView) {
  const Netlist netlist = make_mcnc("apte");
  TwoPinDecomposer decomposer;
  EXPECT_EQ(decomposer.bound_soa(), nullptr);
  decomposer.decompose(netlist, packed_placement(netlist, 1));
  ASSERT_NE(decomposer.bound_soa(), nullptr);
  EXPECT_EQ(decomposer.bound_soa()->net_count(), netlist.net_count());
}

}  // namespace
}  // namespace ficon
