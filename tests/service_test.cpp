// EngineSession contract tests (ROADMAP item 1):
//
//   * session executors are bit-identical to the serial one-shot path at
//     every worker count (1/2/4/8) for both evaluate and sharded anneal
//     requests — the service-layer determinism guarantee,
//   * backpressure: the submit that would overflow the queued-shard
//     budget is rejected synchronously, deterministically, with ticket 0,
//   * cancellation mid-anneal stops cooperatively, returns best-so-far,
//     and leaves the session serviceable,
//   * the protocol codec round-trips requests and replies bit-exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "circuit/mcnc.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "util/rng.hpp"

namespace {

using namespace ficon;
using service::EngineSession;
using service::Reply;
using service::ReplyStatus;
using service::Request;
using service::RequestKind;
using service::SeedResult;
using service::SessionOptions;

Request anneal_request(std::uint64_t seed, int seeds, double effort) {
  Request request;
  request.kind = RequestKind::kAnneal;
  request.objective.gamma = 0.4;
  request.objective.model = CongestionModelKind::kIrregularGrid;
  request.objective.irregular.grid_w = 60.0;
  request.objective.irregular.grid_h = 60.0;
  request.seed = seed;
  request.seeds = seeds;
  request.effort = effort;
  return request;
}

/// An anneal schedule that runs for tens of thousands of cheap
/// temperatures — long enough that a cancel() issued milliseconds after
/// the run starts always lands mid-run (the cancel poll fires at every
/// temperature step).
Request slow_anneal_request() {
  Request request = anneal_request(3, 1, 1.0);
  request.anneal.moves_per_temperature = 20;
  request.anneal.cooling = 0.999;
  request.anneal.stop_temperature_ratio = 1e-12;
  request.anneal.max_stall_temperatures = 1 << 30;
  return request;
}

void expect_same_results(const Reply& expected, const Reply& actual) {
  ASSERT_EQ(expected.status, actual.status);
  ASSERT_EQ(expected.seeds.size(), actual.seeds.size());
  for (std::size_t i = 0; i < expected.seeds.size(); ++i) {
    const SeedResult& e = expected.seeds[i];
    const SeedResult& a = actual.seeds[i];
    EXPECT_EQ(e.seed, a.seed) << "seed index " << i;
    // Bit-exact, not approximate: the session executors must reproduce
    // the serial path double for double.
    EXPECT_EQ(e.metrics.area, a.metrics.area) << "seed index " << i;
    EXPECT_EQ(e.metrics.wirelength, a.metrics.wirelength)
        << "seed index " << i;
    EXPECT_EQ(e.metrics.congestion, a.metrics.congestion)
        << "seed index " << i;
    EXPECT_EQ(e.metrics.cost, a.metrics.cost) << "seed index " << i;
    EXPECT_EQ(e.representation, a.representation) << "seed index " << i;
    EXPECT_EQ(e.cancelled, a.cancelled) << "seed index " << i;
  }
}

TEST(ServiceHelpers, ParsePolishExpressionRoundTrips) {
  const PolishExpression expr = service::parse_polish_expression("0 1 V 2 H");
  EXPECT_EQ(expr.to_string(), "0 1 V 2 H");
  EXPECT_EQ(expr.module_count(), 3);
  EXPECT_THROW(service::parse_polish_expression("0 1 X"),
               std::invalid_argument);
  EXPECT_THROW(service::parse_polish_expression("0 1"),
               std::invalid_argument);  // missing operator
  EXPECT_THROW(service::parse_polish_expression(""), std::invalid_argument);
}

TEST(ServiceHelpers, ShardSeedsMatchTheSeedSweepDerivation) {
  Request request = anneal_request(9, 3, 1.0);
  const std::vector<std::uint64_t> seeds = service::shard_seeds(request);
  ASSERT_EQ(seeds.size(), 3u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(seeds[static_cast<std::size_t>(s)],
              SplitMix64(9 + static_cast<std::uint64_t>(s)).next());
  }
  // A single seed is used directly — the ficon_cli --seed contract.
  request.seeds = 1;
  EXPECT_EQ(service::shard_seeds(request),
            std::vector<std::uint64_t>{9});
}

TEST(ServiceSession, EvaluateBitIdenticalToOneShotAtEveryWorkerCount) {
  const Netlist netlist = make_mcnc("apte");
  Request request;
  request.kind = RequestKind::kEvaluate;
  request.objective.gamma = 0.4;
  request.objective.model = CongestionModelKind::kIrregularGrid;
  request.objective.irregular.grid_w = 60.0;
  request.objective.irregular.grid_h = 60.0;
  const Reply reference = service::run_oneshot(netlist, request);
  ASSERT_EQ(reference.status, ReplyStatus::kOk);
  ASSERT_EQ(reference.seeds.size(), 1u);
  EXPECT_GT(reference.seeds[0].metrics.area, 0.0);

  for (const int workers : {1, 2, 4, 8}) {
    SessionOptions options;
    options.workers = workers;
    EngineSession session(make_mcnc("apte"), options);
    expect_same_results(reference, session.run(request));
  }
}

TEST(ServiceSession, AnnealSweepBitIdenticalToOneShotAtEveryWorkerCount) {
  const Netlist netlist = make_mcnc("apte");
  const Request request = anneal_request(7, 2, 0.05);
  const Reply reference = service::run_oneshot(netlist, request);
  ASSERT_EQ(reference.status, ReplyStatus::kOk);
  ASSERT_EQ(reference.seeds.size(), 2u);
  EXPECT_FALSE(reference.seeds[0].representation.empty());

  for (const int workers : {1, 2, 4, 8}) {
    SessionOptions options;
    options.workers = workers;
    EngineSession session(make_mcnc("apte"), options);
    expect_same_results(reference, session.run(request));
  }
}

TEST(ServiceSession, SessionReusePreservesResults) {
  // Back-to-back requests through one session must not perturb each
  // other via the executor-local caches.
  const Netlist netlist = make_mcnc("apte");
  const Request request = anneal_request(5, 1, 0.05);
  const Reply reference = service::run_oneshot(netlist, request);
  SessionOptions options;
  options.workers = 2;
  EngineSession session(make_mcnc("apte"), options);
  for (int round = 0; round < 3; ++round) {
    expect_same_results(reference, session.run(request));
  }
}

TEST(ServiceSession, BackpressureRejectsTheOverflowingSubmit) {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  SessionOptions options;
  options.workers = 1;
  options.queue_capacity = 3;
  EngineSession session(make_mcnc("apte"), options);

  // Occupy the single executor so everything after stays queued.
  Request gate;
  gate.kind = RequestKind::kEvaluate;
  gate.on_start = [&] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  const EngineSession::Ticket gate_ticket = session.submit(gate);
  ASSERT_NE(gate_ticket, 0u);
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The queue is now empty and capacity is 3: three single-shard
  // submits fit, the fourth is rejected — deterministically.
  Request work;
  work.kind = RequestKind::kEvaluate;
  std::vector<EngineSession::Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(session.submit(work));
    EXPECT_NE(tickets.back(), 0u) << "submit " << i;
  }
  EXPECT_EQ(session.submit(work), 0u);
  // A two-shard request does not fit in zero remaining slots either.
  EXPECT_EQ(session.submit(anneal_request(1, 2, 0.05)), 0u);
  EXPECT_EQ(session.stats().rejected, 2);

  release.store(true);
  EXPECT_EQ(session.wait(gate_ticket).status, ReplyStatus::kOk);
  for (const EngineSession::Ticket ticket : tickets) {
    EXPECT_EQ(session.wait(ticket).status, ReplyStatus::kOk);
  }
  const service::SessionStats stats = session.stats();
  EXPECT_EQ(stats.submitted, 6);
  EXPECT_EQ(stats.accepted, 4);
  EXPECT_EQ(stats.completed, 4);
}

TEST(ServiceSession, CancelWhileQueuedSkipsExecution) {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  SessionOptions options;
  options.workers = 1;
  EngineSession session(make_mcnc("apte"), options);

  Request gate;
  gate.kind = RequestKind::kEvaluate;
  gate.on_start = [&] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  const EngineSession::Ticket gate_ticket = session.submit(gate);
  ASSERT_NE(gate_ticket, 0u);
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const EngineSession::Ticket queued =
      session.submit(anneal_request(11, 1, 1.0));
  ASSERT_NE(queued, 0u);
  EXPECT_TRUE(session.cancel(queued));
  EXPECT_FALSE(session.cancel(queued + 100));  // unknown ticket
  release.store(true);

  const Reply reply = session.wait(queued);
  EXPECT_EQ(reply.status, ReplyStatus::kCancelled);
  ASSERT_EQ(reply.seeds.size(), 1u);
  EXPECT_TRUE(reply.seeds[0].cancelled);
  EXPECT_TRUE(reply.seeds[0].representation.empty());  // never ran
  EXPECT_EQ(session.wait(gate_ticket).status, ReplyStatus::kOk);
}

TEST(ServiceSession, CancelMidAnnealReturnsBestSoFarAndStaysServiceable) {
  std::atomic<bool> started{false};
  SessionOptions options;
  options.workers = 1;
  EngineSession session(make_mcnc("ami33"), options);

  Request request = slow_anneal_request();
  request.on_start = [&] { started.store(true); };
  const EngineSession::Ticket ticket = session.submit(request);
  ASSERT_NE(ticket, 0u);
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(session.cancel(ticket));

  const Reply reply = session.wait(ticket);
  EXPECT_EQ(reply.status, ReplyStatus::kCancelled);
  ASSERT_EQ(reply.seeds.size(), 1u);
  EXPECT_TRUE(reply.seeds[0].cancelled);
  // The run started, so it returns its best-so-far solution.
  EXPECT_FALSE(reply.seeds[0].representation.empty());
  EXPECT_GT(reply.seeds[0].metrics.area, 0.0);

  // The session must keep serving after a cancellation.
  Request followup;
  followup.kind = RequestKind::kEvaluate;
  EXPECT_EQ(session.run(followup).status, ReplyStatus::kOk);
  const service::SessionStats stats = session.stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST(ServiceSession, CallbackRequestsSelfCollect) {
  std::atomic<bool> done{false};
  Reply delivered;
  SessionOptions options;
  options.workers = 2;
  EngineSession session(make_mcnc("apte"), options);
  Request request;
  request.kind = RequestKind::kEvaluate;
  const EngineSession::Ticket ticket = session.submit(
      request, [&](EngineSession::Ticket, const Reply& reply) {
        delivered = reply;
        done.store(true);
      });
  ASSERT_NE(ticket, 0u);
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.status, ReplyStatus::kOk);
  // The ticket was retired on completion: wait() reports it unknown.
  EXPECT_EQ(session.wait(ticket).status, ReplyStatus::kError);
}

TEST(ServiceSession, DestructorCancelsOutstandingWork) {
  std::atomic<int> callbacks{0};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  {
    SessionOptions options;
    options.workers = 1;
    EngineSession session(make_mcnc("apte"), options);
    Request gate;
    gate.kind = RequestKind::kEvaluate;
    gate.on_start = [&] {
      started.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
    session.submit(gate, [&](EngineSession::Ticket, const Reply&) {
      ++callbacks;
    });
    while (!started.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    session.submit(slow_anneal_request(),
                   [&](EngineSession::Ticket, const Reply& reply) {
                     EXPECT_EQ(reply.status, ReplyStatus::kCancelled);
                     ++callbacks;
                   });
    release.store(true);
    // ~EngineSession drains: the queued anneal completes as cancelled.
  }
  EXPECT_EQ(callbacks.load(), 2);
}

TEST(ServiceProtocol, RequestCodecRoundTrips) {
  Request request = anneal_request(123456789012345ull, 4, 0.5);
  request.expression = "0 1 V";
  const std::string payload = service::encode_request(42, request);
  service::ProtocolRequest decoded;
  std::string error;
  ASSERT_TRUE(service::decode_request(payload, &decoded, &error)) << error;
  EXPECT_EQ(decoded.id, 42);
  EXPECT_EQ(decoded.op, service::ProtocolOp::kAnneal);
  EXPECT_EQ(decoded.request.seed, request.seed);
  EXPECT_EQ(decoded.request.seeds, request.seeds);
  EXPECT_EQ(decoded.request.effort, request.effort);
  EXPECT_EQ(decoded.request.objective.model, request.objective.model);
  EXPECT_EQ(decoded.request.objective.irregular.grid_w,
            request.objective.irregular.grid_w);
  EXPECT_EQ(decoded.request.expression, request.expression);

  // Unknown keys and unknown ops are errors, not silently ignored.
  EXPECT_FALSE(service::decode_request(
      R"({"id":1,"op":"anneal","bogus":1})", &decoded, &error));
  EXPECT_FALSE(service::decode_request(
      R"({"id":1,"op":"explode"})", &decoded, &error));
  EXPECT_FALSE(service::decode_request("not json", &decoded, &error));
}

TEST(ServiceProtocol, ReplyCodecRoundTripsBitExactDoubles) {
  Reply reply;
  reply.status = ReplyStatus::kOk;
  reply.seconds = 0.125;
  SeedResult seed;
  seed.seed = 18446744073709551615ull;  // max u64: must survive as string
  seed.metrics.area = 1.0 / 3.0;
  seed.metrics.wirelength = 2.0 / 7.0;
  seed.metrics.congestion = 1e-17;
  seed.metrics.cost = 123456.789012345678;
  seed.representation = "0 1 V 2 H";
  reply.seeds.push_back(seed);

  service::DecodedReply decoded;
  std::string error;
  ASSERT_TRUE(service::decode_reply(service::encode_reply(7, reply),
                                    &decoded, &error))
      << error;
  EXPECT_EQ(decoded.id, 7);
  EXPECT_EQ(decoded.status, "ok");
  ASSERT_EQ(decoded.seeds.size(), 1u);
  EXPECT_EQ(decoded.seeds[0].seed, seed.seed);
  EXPECT_EQ(decoded.seeds[0].metrics.area, seed.metrics.area);
  EXPECT_EQ(decoded.seeds[0].metrics.wirelength, seed.metrics.wirelength);
  EXPECT_EQ(decoded.seeds[0].metrics.congestion, seed.metrics.congestion);
  EXPECT_EQ(decoded.seeds[0].metrics.cost, seed.metrics.cost);
  EXPECT_EQ(decoded.seeds[0].representation, seed.representation);
}

TEST(ServiceProtocol, FramingRoundTripsAndRejectsGarbage) {
  std::stringstream stream;
  service::write_frame(stream, "hello \"frames\"\nwith newlines");
  service::write_frame(stream, "");
  std::string payload;
  EXPECT_EQ(service::read_frame(stream, &payload),
            service::FrameStatus::kOk);
  EXPECT_EQ(payload, "hello \"frames\"\nwith newlines");
  EXPECT_EQ(service::read_frame(stream, &payload),
            service::FrameStatus::kOk);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(service::read_frame(stream, &payload),
            service::FrameStatus::kEof);

  std::stringstream garbage("xyz\n{}\n");
  EXPECT_EQ(service::read_frame(garbage, &payload),
            service::FrameStatus::kMalformed);
  std::stringstream truncated("10\n{}");
  EXPECT_EQ(service::read_frame(truncated, &payload),
            service::FrameStatus::kMalformed);
  std::stringstream oversized("999999999999\n");
  EXPECT_EQ(service::read_frame(oversized, &payload),
            service::FrameStatus::kMalformed);
}

}  // namespace
