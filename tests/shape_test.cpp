// Shape-curve construction and Stockmeyer combination tests.
#include <gtest/gtest.h>

#include "floorplan/shape.hpp"
#include "util/rng.hpp"

namespace ficon {
namespace {

/// Reference combiner: all pairs + dominance pruning (O(n^2), oracle).
std::vector<std::pair<double, double>> combine_bruteforce(
    const ShapeCurve& a, const ShapeCurve& b, bool vertical) {
  std::vector<std::pair<double, double>> all;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (vertical) {
        all.emplace_back(a[i].w + b[j].w, std::max(a[i].h, b[j].h));
      } else {
        all.emplace_back(std::max(a[i].w, b[j].w), a[i].h + b[j].h);
      }
    }
  }
  // Prune dominated points ((w,h) dominated if another has <=w and <=h).
  std::vector<std::pair<double, double>> kept;
  for (const auto& p : all) {
    bool dominated = false;
    for (const auto& q : all) {
      if (&p != &q && q.first <= p.first && q.second <= p.second &&
          (q.first < p.first || q.second < p.second)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(p);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return kept;
}

ShapeCurve random_curve(Rng& rng) {
  // Build a random module-like curve by combining a few random leaves.
  ShapeCurve c = ShapeCurve::for_module(
      Module{"x", rng.uniform(1, 20), rng.uniform(1, 20)});
  const int extra = rng.uniform_int(0, 3);
  for (int i = 0; i < extra; ++i) {
    const ShapeCurve leaf = ShapeCurve::for_module(
        Module{"y", rng.uniform(1, 20), rng.uniform(1, 20)});
    c = rng.chance(0.5) ? ShapeCurve::combine_vertical(c, leaf)
                        : ShapeCurve::combine_horizontal(c, leaf);
  }
  return c;
}

TEST(ShapeCurve, ModuleLeafShapes) {
  const ShapeCurve c = ShapeCurve::for_module(Module{"m", 30, 10});
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0].w, 10);  // rotated first (smaller width)
  EXPECT_DOUBLE_EQ(c[0].h, 30);
  EXPECT_EQ(c[0].a, 1);  // rotated
  EXPECT_DOUBLE_EQ(c[1].w, 30);
  EXPECT_EQ(c[1].a, 0);
  EXPECT_TRUE(c.invariant_holds());
}

TEST(ShapeCurve, SoftModuleSamplesAspectRange) {
  const Module m = Module::make_soft("s", 400.0, 0.25, 4.0);
  const ShapeCurve c = ShapeCurve::for_module(m);
  ASSERT_GE(c.size(), 5u);
  EXPECT_TRUE(c.invariant_holds());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i].w * c[i].h, 400.0, 1e-9);  // area preserved
    const double aspect = c[i].w / c[i].h;
    EXPECT_GE(aspect, 0.25 - 1e-9);
    EXPECT_LE(aspect, 4.0 + 1e-9);
    EXPECT_EQ(c[i].a, 0);  // soft realizations never transpose pins
  }
  // Extremes of the range are realized.
  EXPECT_NEAR(c[0].w / c[0].h, 0.25, 1e-9);
  EXPECT_NEAR(c[c.size() - 1].w / c[c.size() - 1].h, 4.0, 1e-9);
}

TEST(ShapeCurve, SoftModuleWithPinnedAspectSinglePoint) {
  const Module m = Module::make_soft("s", 100.0, 2.0, 2.0);
  const ShapeCurve c = ShapeCurve::for_module(m);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c[0].w / c[0].h, 2.0, 1e-9);
}

TEST(ShapeCurve, SoftAndHardCombine) {
  const ShapeCurve soft =
      ShapeCurve::for_module(Module::make_soft("s", 100.0, 0.5, 2.0));
  const ShapeCurve hard = ShapeCurve::for_module(Module{"h", 12, 5});
  const ShapeCurve v = ShapeCurve::combine_vertical(soft, hard);
  EXPECT_TRUE(v.invariant_holds());
  const ShapeCurve h = ShapeCurve::combine_horizontal(soft, hard);
  EXPECT_TRUE(h.invariant_holds());
}

TEST(ShapeCurve, SquareModuleSinglePoint) {
  const ShapeCurve c = ShapeCurve::for_module(Module{"m", 7, 7});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].a, 0);
}

TEST(ShapeCurve, VerticalCombineTwoRectangles) {
  const ShapeCurve a = ShapeCurve::for_module(Module{"a", 4, 2});
  const ShapeCurve b = ShapeCurve::for_module(Module{"b", 3, 1});
  const ShapeCurve c = ShapeCurve::combine_vertical(a, b);
  EXPECT_TRUE(c.invariant_holds());
  // Every point's dims must equal sum/max of some child pair.
  for (std::size_t i = 0; i < c.size(); ++i) {
    const ShapePoint& p = c[i];
    const ShapePoint& l = a[static_cast<std::size_t>(p.a)];
    const ShapePoint& r = b[static_cast<std::size_t>(p.b)];
    EXPECT_DOUBLE_EQ(p.w, l.w + r.w);
    EXPECT_DOUBLE_EQ(p.h, std::max(l.h, r.h));
  }
}

TEST(ShapeCurve, CombinesMatchBruteForce) {
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const ShapeCurve a = random_curve(rng);
    const ShapeCurve b = random_curve(rng);
    for (const bool vertical : {true, false}) {
      const ShapeCurve c = vertical ? ShapeCurve::combine_vertical(a, b)
                                    : ShapeCurve::combine_horizontal(a, b);
      EXPECT_TRUE(c.invariant_holds());
      const auto expected = combine_bruteforce(a, b, vertical);
      ASSERT_EQ(c.size(), expected.size()) << "trial " << trial;
      for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_DOUBLE_EQ(c[i].w, expected[i].first);
        EXPECT_DOUBLE_EQ(c[i].h, expected[i].second);
      }
    }
  }
}

TEST(ShapeCurve, ChildChoicesConsistent) {
  Rng rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    const ShapeCurve a = random_curve(rng);
    const ShapeCurve b = random_curve(rng);
    const ShapeCurve v = ShapeCurve::combine_vertical(a, b);
    for (std::size_t i = 0; i < v.size(); ++i) {
      ASSERT_GE(v[i].a, 0);
      ASSERT_LT(static_cast<std::size_t>(v[i].a), a.size());
      ASSERT_GE(v[i].b, 0);
      ASSERT_LT(static_cast<std::size_t>(v[i].b), b.size());
      EXPECT_DOUBLE_EQ(v[i].w, a[static_cast<std::size_t>(v[i].a)].w +
                                   b[static_cast<std::size_t>(v[i].b)].w);
    }
    const ShapeCurve h = ShapeCurve::combine_horizontal(a, b);
    for (std::size_t i = 0; i < h.size(); ++i) {
      EXPECT_DOUBLE_EQ(h[i].h, a[static_cast<std::size_t>(h[i].a)].h +
                                   b[static_cast<std::size_t>(h[i].b)].h);
    }
  }
}

TEST(ShapeCurve, MinAreaIndexIsMinimal) {
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const ShapeCurve c = random_curve(rng);
    const std::size_t best = c.min_area_index();
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_LE(c[best].w * c[best].h, c[i].w * c[i].h + 1e-9);
    }
  }
}

TEST(ShapeCurve, CombineSizeBounded) {
  // Non-dominated merge result has at most |a| + |b| - 1 points.
  Rng rng(24);
  for (int trial = 0; trial < 100; ++trial) {
    const ShapeCurve a = random_curve(rng);
    const ShapeCurve b = random_curve(rng);
    EXPECT_LE(ShapeCurve::combine_vertical(a, b).size(), a.size() + b.size());
    EXPECT_LE(ShapeCurve::combine_horizontal(a, b).size(),
              a.size() + b.size());
  }
}

}  // namespace
}  // namespace ficon
